#![warn(missing_docs)]

//! # seqfm-retrieval
//!
//! Full-catalog top-K retrieval over a frozen SeqFM: the
//! retrieval-then-rank serving shape the paper's ranking experiments
//! presuppose, scaled to "score *everything*".
//!
//! * [`CatalogIndex`] — the catalog pre-blocked for scanning: per-item
//!   linear partial scores and per-block candidate-side bound envelopes are
//!   computed once at build; every retrieval streams the blocks through
//!   [`FrozenSeqFm`](seqfm_core::FrozenSeqFm) reusing a single cached
//!   [`HistoryView`](seqfm_core::HistoryView), so the history-side work is
//!   paid once per query instead of once per item.
//! * [`TopK`] / [`rank_cmp`] — deterministic bounded selection: per-worker
//!   shards merge under a total order (descending score by `total_cmp`,
//!   item-id tiebreak, NaN last), so results are bit-identical at any
//!   worker count.
//! * [`CatalogIndex::retrieve`] — the sublinear path: an adaptive
//!   **two-phase scan**. Phase one visits blocks best-first by the best
//!   score ever *observed* in each block ([`ScanStats`], falling back to
//!   the sound upper bound where nothing was observed) and skips
//!   speculatively against the running k-th threshold; a **sound repair
//!   pass** then re-scores every skipped unit whose sound bound (see
//!   [`seqfm_core::bounds`]) still clears the threshold. The speculation
//!   steers *work*; only the sound bound ever *excludes* — so retrieval
//!   returns the **exact** brute-force top-K (same ids, same logit bits)
//!   even under stale or adversarially wrong statistics, while the
//!   effective skip rate tracks observed scores instead of the adversarial
//!   envelope.

pub mod index;
pub mod stats;
pub mod topk;

pub use index::{CatalogIndex, Retrieval, RetrievalError};
pub use stats::ScanStats;
pub use topk::{rank_cmp, ScoredItem, TopK};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{FrozenSeqFm, Scratch, SeqFm, SeqFmConfig};
    use seqfm_data::{build_instance, FeatureLayout};
    use seqfm_parallel::ThreadPool;
    use std::sync::Arc;

    fn setup(n_items: usize, seed: u64) -> (Arc<FrozenSeqFm>, FeatureLayout) {
        setup_with(n_items, seed, false)
    }

    /// `spread` reshapes the item linear weights into a popularity-like
    /// skew (hot head, long negative tail) — the regime where the
    /// upper-bound prune actually fires.
    fn setup_with(n_items: usize, seed: u64, spread: bool) -> (Arc<FrozenSeqFm>, FeatureLayout) {
        let layout = FeatureLayout { n_users: 5, n_items };
        let cfg = SeqFmConfig { d: 8, max_seq: 6, dropout: 0.0, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        if spread {
            let id = ps.id_of("seqfm.w_static.table").expect("item linear table");
            let w = ps.value_mut(id).data_mut();
            for c in 0..n_items {
                let r = (c as f32 + 1.0) / n_items as f32;
                w[layout.n_users + c] = 2.0 - 24.0 * r.sqrt();
            }
        }
        (Arc::new(FrozenSeqFm::freeze(&model, &ps)), layout)
    }

    fn view_for(
        model: &FrozenSeqFm,
        layout: &FeatureLayout,
        user: u32,
        hist: &[u32],
    ) -> seqfm_core::HistoryView {
        let inst = build_instance(layout, user, 0, hist, 6, 0.0);
        model.history_view(&inst.dyn_idx, &mut Scratch::new())
    }

    #[test]
    fn pruned_matches_brute_bitwise() {
        let (model, layout) = setup(97, 3);
        let index = CatalogIndex::build(model.clone(), layout, 16);
        let view = view_for(&model, &layout, 2, &[4, 90, 17]);
        let brute = index.retrieve_brute(2, &view, 10).unwrap();
        let pruned = index.retrieve(2, &view, 10).unwrap();
        assert_eq!(brute.items.len(), 10);
        assert_eq!(pruned.items.len(), 10);
        for (b, p) in brute.items.iter().zip(&pruned.items) {
            assert_eq!(b.item, p.item);
            assert_eq!(b.score.to_bits(), p.score.to_bits());
        }
        assert_eq!(pruned.blocks_scored + pruned.blocks_pruned, index.n_blocks());
    }

    /// On a popularity-skewed catalog the prune must actually fire — and
    /// still return exactly the brute-force answer, bit for bit.
    #[test]
    fn prune_fires_on_skewed_catalogs_and_stays_exact() {
        let (model, layout) = setup_with(2000, 13, true);
        let index = CatalogIndex::build(model.clone(), layout, 32);
        let view = view_for(&model, &layout, 1, &[3, 1400, 250]);
        let brute = index.retrieve_brute(1, &view, 10).unwrap();
        let pruned = index.retrieve(1, &view, 10).unwrap();
        assert!(
            pruned.blocks_pruned > 0,
            "expected the skewed tail to prune, got {} scored / {} pruned",
            pruned.blocks_scored,
            pruned.blocks_pruned
        );
        for (b, p) in brute.items.iter().zip(&pruned.items) {
            assert_eq!(b.item, p.item);
            assert_eq!(b.score.to_bits(), p.score.to_bits());
        }
    }

    /// Worst case for the speculation: a perfectly flat catalog (every item
    /// linear weight identical) gives the bound-order nothing to work with.
    /// A *cold* index must degrade exactly to the plain sound scan — no
    /// speculative skips, so no repair work — and stay bit-exact; a *warm*
    /// index may reorder work but can never score more items than the
    /// catalog holds (each block's forward passes cover disjoint items).
    #[test]
    fn flat_catalog_degrades_to_the_sound_scan_without_repair_overhead() {
        let layout = FeatureLayout { n_users: 5, n_items: 96 };
        let cfg = SeqFmConfig { d: 8, max_seq: 6, dropout: 0.0, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(29);
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let id = ps.id_of("seqfm.w_static.table").expect("item linear table");
        let w = ps.value_mut(id).data_mut();
        for c in 0..96 {
            w[layout.n_users + c] = 0.125; // dead flat
        }
        let model = Arc::new(FrozenSeqFm::freeze(&model, &ps));
        let index = CatalogIndex::build(Arc::clone(&model), layout, 16);
        let view = view_for(&model, &layout, 3, &[10, 55, 7]);
        // Cold: keys are the sound bounds, nothing is speculative. (Order
        // matters — a brute scan would warm the observed-max statistics.)
        let cold = index.retrieve(3, &view, 10).unwrap();
        assert_eq!(cold.blocks_repaired, 0, "a cold index has nothing to repair");
        let brute = index.retrieve_brute(3, &view, 10).unwrap();
        for (b, p) in brute.items.iter().zip(&cold.items) {
            assert_eq!(b.item, p.item);
            assert_eq!(b.score.to_bits(), p.score.to_bits());
        }
        // Warm (the brute scan above and the cold retrieval both recorded
        // observed maxima): still exact, and never more work than brute.
        let warm = index.retrieve(3, &view, 10).unwrap();
        for (b, p) in brute.items.iter().zip(&warm.items) {
            assert_eq!(b.item, p.item);
            assert_eq!(b.score.to_bits(), p.score.to_bits());
        }
        assert!(
            warm.items_scored <= brute.items_scored,
            "phase one + repair score disjoint item sets, so the flat worst case \
             is bounded by the brute scan ({} vs {})",
            warm.items_scored,
            brute.items_scored
        );
        assert_eq!(warm.blocks_scored + warm.blocks_pruned, index.n_blocks());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (model, layout) = setup(61, 8);
        let index = CatalogIndex::build(model.clone(), layout, 8);
        let view = view_for(&model, &layout, 4, &[1, 2, 3, 4, 5, 6]);
        let p1 = ThreadPool::new(1);
        let p4 = ThreadPool::new(4);
        for retrieve in [CatalogIndex::retrieve_in, CatalogIndex::retrieve_brute_in] {
            let serial = retrieve(&index, 4, &view, 7, &p1).unwrap();
            let parallel = retrieve(&index, 4, &view, 7, &p4).unwrap();
            assert_eq!(serial.items.len(), parallel.items.len());
            for (a, b) in serial.items.iter().zip(&parallel.items) {
                assert_eq!(a.item, b.item);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn k_of_at_least_catalog_size_returns_all_items_sorted() {
        let (model, layout) = setup(9, 5);
        let index = CatalogIndex::build(model.clone(), layout, 4);
        let view = view_for(&model, &layout, 0, &[2, 7]);
        for k in [9, 10, usize::MAX] {
            let r = index.retrieve(0, &view, k).unwrap();
            assert_eq!(r.items.len(), 9, "k={k} must return the whole catalog");
            for w in r.items.windows(2) {
                assert_ne!(
                    rank_cmp(&w[1], &w[0]),
                    std::cmp::Ordering::Less,
                    "items must be rank-sorted"
                );
            }
            let mut ids: Vec<u32> = r.items.iter().map(|c| c.item).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..9).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn k_zero_is_a_typed_error_not_a_panic() {
        let (model, layout) = setup(9, 5);
        let index = CatalogIndex::build(model.clone(), layout, 4);
        let view = view_for(&model, &layout, 0, &[2]);
        for result in [index.retrieve(0, &view, 0), index.retrieve_brute(0, &view, 0)] {
            match result {
                Err(RetrievalError::BadConfig { reason }) => {
                    assert!(reason.contains("k == 0"), "unexpected reason: {reason}")
                }
                other => panic!("expected BadConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_user_is_a_typed_error() {
        let (model, layout) = setup(9, 5);
        let index = CatalogIndex::build(model.clone(), layout, 4);
        let view = view_for(&model, &layout, 0, &[2]);
        assert!(matches!(index.retrieve(99, &view, 3), Err(RetrievalError::BadConfig { .. })));
    }

    #[test]
    fn index_precomputes_item_linear_partials() {
        let (model, layout) = setup(12, 6);
        let index = CatalogIndex::build(model.clone(), layout, 5);
        assert_eq!(index.n_blocks(), 3);
        assert_eq!(index.block_size(), 5);
        assert_eq!(index.n_items(), 12);
        for c in 0..12u32 {
            assert_eq!(index.item_linear(c).to_bits(), model.item_linear(&layout, c).to_bits());
        }
    }
}
