//! Steady-state `Scorer::score_into` performs **zero heap allocations** —
//! asserted with a counting global allocator.
//!
//! This binary holds exactly one test so the process-wide allocation
//! counter can't be perturbed by concurrent sibling tests. `SEQFM_WORKERS`
//! is pinned to 1 before the first kernel dispatch: parallel fan-out boxes
//! one closure per task by design, so the zero-allocation guarantee is a
//! property of the serial hot path every worker thread runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, Scorer, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::{build_instance, Batch, FeatureLayout};
use seqfm_tensor::testutil::CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_score_into_performs_zero_heap_allocations() {
    // Must precede the first kernel dispatch: the global pool reads the
    // variable exactly once per process.
    std::env::set_var("SEQFM_WORKERS", "1");

    let layout = FeatureLayout { n_users: 64, n_items: 300 };
    let cfg = SeqFmConfig { d: 32, max_seq: 20, dropout: 0.0, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(9);
    let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
    let frozen = FrozenSeqFm::freeze(&model, &ps);

    // A candidate-expansion-shaped batch: one shared history, many
    // candidates — the serving engine's hot shape.
    let hist: Vec<u32> = (0..20).map(|j| (j * 7) % 300).collect();
    let shared: Vec<_> =
        (0..32).map(|c| build_instance(&layout, 3, (c * 5) % 300, &hist, 20, 0.0)).collect();
    let shared = Batch::try_from_instances(&shared).expect("valid batch");
    // And a mixed-history batch exercising the general path.
    let mixed: Vec<_> = (0..8)
        .map(|i| build_instance(&layout, i as u32, (i * 11) as u32 % 300, &hist[..i], 20, 0.0))
        .collect();
    let mixed = Batch::try_from_instances(&mixed).expect("valid batch");

    let mut scratch = Scratch::new();
    let mut out = Vec::with_capacity(shared.len + mixed.len);

    // Warm-up: grows every arena buffer, the mask cache, and the output
    // accumulator to their high-water marks.
    for _ in 0..5 {
        out.clear();
        frozen.score_into(&shared, &mut scratch, &mut out);
        frozen.score_into(&mixed, &mut scratch, &mut out);
    }
    let want = out.clone();

    // Steady state: not a single heap allocation across 100 scoring calls.
    let before = CountingAlloc::allocations();
    for _ in 0..50 {
        out.clear();
        frozen.score_into(&shared, &mut scratch, &mut out);
        frozen.score_into(&mixed, &mut scratch, &mut out);
    }
    let after = CountingAlloc::allocations();
    assert_eq!(after - before, 0, "steady-state score_into allocated {} time(s)", after - before);
    // And the warm path kept producing the same logits.
    assert_eq!(out, want, "warm path changed the scores");
}
