//! [`HistoryView`] scoring is **bit-identical** to the plain forward —
//! against both the frozen fast paths and the autograd graph — for every
//! Table-V ablation variant and every extension variant, across batch
//! shapes (candidate expansion, single row) and view histories of every
//! padding length.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_core::{Ablation, FrozenSeqFm, Scorer, Scratch, SeqFm, SeqFmConfig, SeqModel};
use seqfm_data::{build_instance, Batch, FeatureLayout};

const MAX_SEQ: usize = 6;

fn layout() -> FeatureLayout {
    FeatureLayout { n_users: 6, n_items: 10 }
}

fn all_variants() -> Vec<(&'static str, Ablation)> {
    let mut v = Ablation::table5_variants();
    v.extend(Ablation::extension_variants());
    v
}

fn setup(ab: Ablation, seed: u64) -> (SeqFm, ParamStore) {
    let cfg =
        SeqFmConfig { d: 8, max_seq: MAX_SEQ, dropout: 0.0, ablation: ab, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
    (model, ps)
}

fn graph_logits(model: &SeqFm, ps: &ParamStore, b: &Batch) -> Vec<f32> {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(77);
    let y = model.forward(&mut g, ps, b, false, &mut rng);
    g.value(y).data().to_vec()
}

/// A candidate-expansion batch: one shared history, `n_cand` candidates.
fn expansion_batch(user: u32, hist: &[u32], n_cand: usize) -> Batch {
    let l = layout();
    let insts: Vec<_> =
        (0..n_cand).map(|c| build_instance(&l, user, c as u32, hist, MAX_SEQ, 0.0)).collect();
    Batch::try_from_instances(&insts).expect("valid batch")
}

fn assert_bits(name: &str, ctx: &str, expect: &[f32], got: &[f32]) {
    assert_eq!(expect.len(), got.len(), "{name}/{ctx}: length mismatch");
    for (i, (e, g)) in expect.iter().zip(got).enumerate() {
        assert_eq!(e.to_bits(), g.to_bits(), "{name}/{ctx}: logit {i} diverges ({e} vs {g})");
    }
}

#[test]
fn view_scoring_is_bit_identical_across_all_variants() {
    // Histories of different lengths exercise every padding count,
    // including a full window (no pad) and a single event (max pad).
    let hists: [&[u32]; 3] = [&[1, 2, 5, 8], &[3, 0, 7, 2, 9, 4], &[6]];
    for (name, ab) in all_variants() {
        let (model, ps) = setup(ab, 17);
        let frozen = FrozenSeqFm::freeze(&model, &ps);
        let mut scratch = Scratch::new();
        for hist in hists {
            for n_cand in [7usize, 1] {
                let batch = expansion_batch(3, hist, n_cand);
                let expect = graph_logits(&model, &ps, &batch);
                // Plain frozen path (shared fast path or single-row).
                let plain = frozen.score(&batch, &mut scratch).to_vec();
                assert_bits(name, "plain", &expect, &plain);
                // View built directly, scored through the cached path.
                let view = frozen.history_view(&batch.dyn_idx[..batch.n_dynamic], &mut scratch);
                let cached = frozen.score_with_view(&batch, &view, &mut scratch).to_vec();
                assert_bits(name, "view", &expect, &cached);
            }
        }
    }
}

#[test]
fn scorer_trait_hooks_route_through_the_view_path() {
    let (model, ps) = setup(Ablation::default(), 23);
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    assert!(frozen.supports_history_view());
    let batch = expansion_batch(2, &[4, 1, 9], 5);
    let mut scratch = Scratch::new();
    let expect = frozen.score(&batch, &mut scratch).to_vec();
    let view = frozen
        .build_history_view(&batch.dyn_idx[..batch.n_dynamic], &mut scratch)
        .expect("frozen scorer builds views");
    assert_eq!(view.nd(), MAX_SEQ);
    assert_eq!(view.dyn_idx(), &batch.dyn_idx[..batch.n_dynamic]);
    assert!(view.approx_bytes() > 0);
    let mut out = Vec::new();
    frozen.score_with_view_into(&batch, &view, &mut scratch, &mut out);
    assert_bits("default", "trait-hooks", &expect, &out);
}

#[test]
fn view_reuse_across_users_is_bit_identical() {
    // The view depends only on history content — scoring a *different*
    // user's expansion batch over the same canonical history must reuse it
    // bit-identically (the contract behind cross-user coalescing).
    let (model, ps) = setup(Ablation::default(), 31);
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    let mut scratch = Scratch::new();
    let hist = [2u32, 7, 3];
    let batch_a = expansion_batch(1, &hist, 4);
    let batch_b = expansion_batch(5, &hist, 4);
    let view = frozen.history_view(&batch_a.dyn_idx[..batch_a.n_dynamic], &mut scratch);
    let got_b = frozen.score_with_view(&batch_b, &view, &mut scratch).to_vec();
    let expect_b = graph_logits(&model, &ps, &batch_b);
    assert_bits("default", "cross-user", &expect_b, &got_b);
}

#[test]
#[should_panic(expected = "does not match the batch's dynamic block")]
fn stale_view_is_rejected_loudly() {
    let (model, ps) = setup(Ablation::default(), 41);
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    let mut scratch = Scratch::new();
    let view =
        frozen.history_view(&expansion_batch(0, &[1, 2], 1).dyn_idx[..MAX_SEQ], &mut scratch);
    // History moved on (append happened) but the view didn't: must panic,
    // not serve stale scores.
    let newer = expansion_batch(0, &[1, 2, 3], 1);
    let _ = frozen.score_with_view(&newer, &view, &mut scratch);
}

#[test]
fn graph_scorer_reports_no_view_support() {
    let (model, ps) = setup(Ablation::default(), 47);
    let scorer = seqfm_core::GraphScorer::new(model, ps);
    assert!(!scorer.supports_history_view());
    let mut scratch = Scratch::new();
    assert!(scorer.build_history_view(&[1, 2, 3], &mut scratch).is_none());
}
