//! The SeqFM model (paper §III, Fig. 2).
//!
//! Pipeline per prediction (Eq. 19):
//!
//! ```text
//! ŷ = w₀ + [ (G°w°)ᵀ ; (G˙w˙)ᵀ ]·1 + ⟨p, hagg⟩
//!                linear terms            multi-view factorization
//!
//! hagg = [ FFN(pool(SelfAttn(E°)))            — static view   (Eq. 8)
//!        ; FFN(pool(CausalSelfAttn(E˙)))      — dynamic view  (Eq. 9–10)
//!        ; FFN(pool(CrossSelfAttn([E°;E˙]))) ] — cross view    (Eq. 11–13)
//! ```
//!
//! with intra-view mean pooling (Eq. 14) and the *shared* l-layer residual
//! FFN (Eq. 15–16). Padding rows of the dynamic block embed to zero vectors
//! exactly as the paper specifies (§III).

use crate::config::SeqFmConfig;
use crate::SeqModel;
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamId, ParamStore, Var};
use seqfm_data::{Batch, FeatureLayout, PAD};
use seqfm_nn::{Embedding, ResidualFfn, SelfAttention};
use seqfm_tensor::{AttnMask, Shape, Tensor};
use std::sync::Arc;

/// Sequence-Aware Factorization Machine.
pub struct SeqFm {
    cfg: SeqFmConfig,
    emb_static: Embedding,
    emb_dynamic: Embedding,
    /// First-order weights w° (table width 1, gathered like an embedding).
    w_static: Embedding,
    /// First-order weights w˙.
    w_dynamic: Embedding,
    /// Global bias w₀.
    w0: ParamId,
    attn_static: SelfAttention,
    attn_dynamic: SelfAttention,
    attn_cross: SelfAttention,
    /// One shared FFN (paper) or one per active view (extension ablation).
    ffns: Vec<ResidualFfn>,
    /// Output projection p ∈ R^{(views·d)×1} (Eq. 18).
    p: ParamId,
}

impl SeqFm {
    /// Builds a SeqFM for the given feature layout.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (see [`SeqFmConfig::validate`]).
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        cfg: SeqFmConfig,
    ) -> Self {
        cfg.validate();
        let d = cfg.d;
        let emb_static = Embedding::new(ps, rng, "seqfm.emb_static", layout.m_static(), d);
        let emb_dynamic = Embedding::new(ps, rng, "seqfm.emb_dynamic", layout.m_dynamic(), d);
        let w_static = Embedding::zeros(ps, "seqfm.w_static", layout.m_static(), 1);
        let w_dynamic = Embedding::zeros(ps, "seqfm.w_dynamic", layout.m_dynamic(), 1);
        let w0 = ps.add_dense("seqfm.w0", Tensor::zeros(Shape::d1(1)));
        let attn_static = SelfAttention::new(ps, rng, "seqfm.attn_static", d);
        let attn_dynamic = SelfAttention::new(ps, rng, "seqfm.attn_dynamic", d);
        let attn_cross = SelfAttention::new(ps, rng, "seqfm.attn_cross", d);
        let n_ffns = if cfg.ablation.shared_ffn { 1 } else { cfg.ablation.active_views() };
        let ffns = (0..n_ffns)
            .map(|i| ResidualFfn::new(ps, rng, &format!("seqfm.ffn{i}"), d, cfg.layers))
            .collect();
        let views = cfg.ablation.active_views();
        let p = ps.add_dense("seqfm.p", seqfm_nn::init::xavier_uniform(rng, views * d, 1));
        SeqFm {
            cfg,
            emb_static,
            emb_dynamic,
            w_static,
            w_dynamic,
            w0,
            attn_static,
            attn_dynamic,
            attn_cross,
            ffns,
            p,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &SeqFmConfig {
        &self.cfg
    }

    /// Intra-view pooling (Eq. 14): plain mean over rows, or — with the
    /// `masked_pooling` extension — a mean over *real* (non-padded) rows
    /// only.
    fn pool(&self, g: &mut Graph, h: Var, pad_counts: Option<(&[usize], usize)>) -> Var {
        match (self.cfg.ablation.masked_pooling, pad_counts) {
            (true, Some((pads, n_fixed))) => {
                let s = g.value(h).shape();
                let (b, n, d) = (s.dim(0), s.dim(1), s.dim(2));
                // indicator[b, n, d]: 0 for padded rows, 1 for real rows;
                // the first `n - seq_len` *dynamic* rows of each sample are
                // padded. `n_fixed` leading rows (cross view: the static
                // block) are always real.
                let mut ind = Tensor::ones(Shape::d3(b, n, d));
                let mut inv = Tensor::zeros(Shape::d2(b, d));
                for (bi, &pad) in pads.iter().enumerate().take(b) {
                    for r in n_fixed..n_fixed + pad {
                        ind.data_mut()[(bi * n + r) * d..(bi * n + r + 1) * d].fill(0.0);
                    }
                    let real = (n - pad) as f32;
                    inv.data_mut()[bi * d..(bi + 1) * d].fill(1.0 / real.max(1.0));
                }
                let ind = g.input(ind);
                let inv = g.input(inv);
                let masked = g.mul(h, ind);
                let summed = g.sum_axis1(masked);
                g.mul(summed, inv)
            }
            _ => g.mean_axis1(h),
        }
    }
}

impl SeqModel for SeqFm {
    fn name(&self) -> &str {
        "SeqFM"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let (b, ns, nd) = (batch.len, batch.n_static, batch.n_dynamic);
        let ab = &self.cfg.ablation;

        // Embedding layer (Eq. 5).
        let e_s = self.emb_static.lookup(g, ps, &batch.static_idx, b, ns);
        let e_d = self.emb_dynamic.lookup(g, ps, &batch.dyn_idx, b, nd);

        // Per-sample padding lengths (for the masked-pooling extension).
        let pad_counts: Vec<usize> = (0..b)
            .map(|bi| {
                batch.dyn_idx[bi * nd..(bi + 1) * nd].iter().take_while(|&&i| i == PAD).count()
            })
            .collect();

        // Multi-view self-attention + intra-view pooling.
        let mut pooled: Vec<Var> = Vec::with_capacity(3);
        if ab.static_view {
            let h = self.attn_static.forward(g, ps, e_s, None);
            pooled.push(self.pool(g, h, None));
        }
        if ab.dynamic_view {
            let mask = Arc::new(AttnMask::causal(nd));
            let h = self.attn_dynamic.forward(g, ps, e_d, Some(mask));
            pooled.push(self.pool(g, h, Some((&pad_counts, 0))));
        }
        if ab.cross_view {
            let e_cross = g.concat_axis1(e_s, e_d);
            let mask = Arc::new(AttnMask::cross(ns, nd));
            let h = self.attn_cross.forward(g, ps, e_cross, Some(mask));
            pooled.push(self.pool(g, h, Some((&pad_counts, ns))));
        }

        // Shared (or per-view) residual FFN (Eq. 15).
        let processed: Vec<Var> = pooled
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                let ffn = if ab.shared_ffn { &self.ffns[0] } else { &self.ffns[i] };
                ffn.forward(g, ps, h, self.cfg.dropout, training, rng, ab.residual, ab.layer_norm)
            })
            .collect();

        // View-wise aggregation (Eq. 17) and output projection (Eq. 18).
        let hagg = if processed.len() == 1 { processed[0] } else { g.concat_cols(&processed) };
        let p = g.param(ps, self.p);
        let f = g.matmul(hagg, p); // [b, 1]

        // Linear terms (Eq. 4): w₀ + Σ w°ᵢ + Σ w˙ᵢ over active features.
        let ws = self.w_static.lookup(g, ps, &batch.static_idx, b, ns); // [b, ns, 1]
        let lin_s = g.sum_axis1(ws); // [b, 1]
        let wd = self.w_dynamic.lookup(g, ps, &batch.dyn_idx, b, nd);
        let lin_d = g.sum_axis1(wd);
        let lin = g.add(lin_s, lin_d);

        let mut out = g.add(f, lin);
        let w0 = g.param(ps, self.w0);
        out = g.add_bias(out, w0);
        g.reshape(out, Shape::d1(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use rand::SeedableRng;
    use seqfm_data::build_instance;

    fn layout() -> FeatureLayout {
        FeatureLayout { n_users: 6, n_items: 10 }
    }

    fn batch(layout: &FeatureLayout, max_seq: usize) -> Batch {
        let insts = vec![
            build_instance(layout, 0, 3, &[1, 2, 5], max_seq, 1.0),
            build_instance(layout, 2, 7, &[4], max_seq, 0.0),
            build_instance(layout, 5, 9, &[0, 1, 2, 3, 4, 5, 6, 7], max_seq, 1.0),
        ];
        Batch::try_from_instances(&insts).expect("valid batch")
    }

    fn build(cfg: SeqFmConfig) -> (SeqFm, ParamStore, StdRng) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let m = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
        (m, ps, rng)
    }

    #[test]
    fn forward_emits_one_logit_per_instance() {
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let (m, ps, mut rng) = build(cfg);
        let b = batch(&layout(), 6);
        let mut g = Graph::new();
        let y = m.forward(&mut g, &ps, &b, false, &mut rng);
        assert_eq!(g.value(y).shape(), Shape::d1(3));
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn forward_is_deterministic_outside_training() {
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let (m, ps, mut rng) = build(cfg);
        let b = batch(&layout(), 6);
        let mut g1 = Graph::new();
        let y1 = m.forward(&mut g1, &ps, &b, false, &mut rng);
        let mut g2 = Graph::new();
        let y2 = m.forward(&mut g2, &ps, &b, false, &mut rng);
        assert_eq!(g1.value(y1).data(), g2.value(y2).data());
    }

    #[test]
    fn dropout_only_randomises_training_mode() {
        let cfg = SeqFmConfig { d: 8, max_seq: 6, dropout: 0.5, ..Default::default() };
        let (m, ps, mut rng) = build(cfg);
        let b = batch(&layout(), 6);
        let mut g = Graph::new();
        let t1 = m.forward(&mut g, &ps, &b, true, &mut rng);
        let t2 = m.forward(&mut g, &ps, &b, true, &mut rng);
        assert_ne!(g.value(t1).data(), g.value(t2).data(), "training passes should differ");
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let cfg = SeqFmConfig { d: 4, max_seq: 6, dropout: 0.0, ..Default::default() };
        let (m, mut ps, mut rng) = build(cfg);
        let b = batch(&layout(), 6);
        let mut g = Graph::new();
        let y = m.forward(&mut g, &ps, &b, true, &mut rng);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        g.backward(loss, &mut ps);
        // Every dense parameter must receive some gradient; embeddings must
        // have touched rows.
        for (id, p) in ps.iter() {
            match p.kind() {
                seqfm_autograd::ParamKind::Dense => {
                    assert!(
                        p.grad().max_abs() > 0.0,
                        "dense parameter `{}` received no gradient",
                        p.name()
                    );
                }
                seqfm_autograd::ParamKind::SparseRows => {
                    assert!(
                        !ps.touched_rows(id).is_empty(),
                        "sparse parameter `{}` has no touched rows",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn future_items_cannot_influence_logits() {
        // Temporal causality at the model level: the logit must be identical
        // whether or not the dynamic sequence is extended *before* its start
        // (i.e. padding is inert), and changing nothing but the order of the
        // dynamic items must change the logit (sequence-awareness).
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let (m, ps, mut rng) = build(cfg);
        let l = layout();
        let fwd = |m: &SeqFm, ps: &ParamStore, hist: &[u32], rng: &mut StdRng| -> f32 {
            let inst = vec![build_instance(&l, 0, 3, hist, 6, 1.0)];
            let b = Batch::try_from_instances(&inst).expect("valid batch");
            let mut g = Graph::new();
            let y = m.forward(&mut g, ps, &b, false, rng);
            g.value(y).data()[0]
        };
        let a = fwd(&m, &ps, &[1, 2, 5], &mut rng);
        let shuffled = fwd(&m, &ps, &[5, 1, 2], &mut rng);
        assert!((a - shuffled).abs() > 1e-7, "model is order-blind: {a} vs {shuffled}");
    }

    #[test]
    fn ablations_change_output_and_param_count() {
        let l = layout();
        let base_cfg = SeqFmConfig { d: 8, max_seq: 6, dropout: 0.0, ..Default::default() };
        let (_, base_ps, _) = build(base_cfg);
        let base_params = base_ps.total_elems();
        for (name, ab) in Ablation::table5_variants().into_iter().skip(1) {
            let cfg = SeqFmConfig { ablation: ab, ..base_cfg };
            let mut ps = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(1);
            let m = SeqFm::new(&mut ps, &mut rng, &l, cfg);
            let b = batch(&l, 6);
            let mut g = Graph::new();
            let y = m.forward(&mut g, &ps, &b, false, &mut rng);
            assert!(!g.value(y).has_non_finite(), "{name} produced non-finite output");
            if matches!(name, "Remove SV" | "Remove DV" | "Remove CV") {
                assert!(
                    ps.total_elems() < base_params,
                    "{name} should shrink the output projection"
                );
            }
        }
    }

    #[test]
    fn masked_pooling_extension_changes_padded_outputs_only_slightly() {
        // Same inputs, two pooling modes: outputs differ for padded samples.
        let l = layout();
        let mk = |masked: bool| {
            let ab = Ablation { masked_pooling: masked, ..Default::default() };
            let cfg =
                SeqFmConfig { d: 8, max_seq: 6, dropout: 0.0, ablation: ab, ..Default::default() };
            let mut ps = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(1);
            let m = SeqFm::new(&mut ps, &mut rng, &l, cfg);
            (m, ps)
        };
        let (m0, ps0) = mk(false);
        let (m1, ps1) = mk(true);
        let b = batch(&l, 6);
        let mut rng = StdRng::seed_from_u64(9);
        let mut g0 = Graph::new();
        let y0 = m0.forward(&mut g0, &ps0, &b, false, &mut rng);
        let mut g1 = Graph::new();
        let y1 = m1.forward(&mut g1, &ps1, &b, false, &mut rng);
        // instance 2 has a full-length history (8 > 6 → no padding): with
        // identical seeds the parameters are identical, so its logit matches.
        let a = g0.value(y0).data();
        let c = g1.value(y1).data();
        assert!((a[2] - c[2]).abs() < 1e-5, "unpadded sample should be unaffected");
        assert!((a[1] - c[1]).abs() > 1e-6, "heavily padded sample should differ");
    }
}
