#![warn(missing_docs)]

//! # seqfm-core
//!
//! The paper's contribution: **SeqFM**, the Sequence-Aware Factorization
//! Machine (Chen et al., ICDE 2020), together with the task heads and
//! training/evaluation protocols of §IV–V.
//!
//! * [`SeqFm`] / [`SeqFmConfig`] / [`Ablation`] — the model (§III) with
//!   Table-V ablation switches;
//! * [`SeqModel`] — the *training* interface shared with every baseline in
//!   `seqfm-baselines` (graph-based forward);
//! * [`Scorer`] / [`Scratch`] — the *inference* interface: graph-free,
//!   allocation-free after warm-up, `&self`-only so models share across
//!   threads;
//! * [`FrozenSeqFm`] — SeqFM frozen into an immutable parameter snapshot,
//!   scoring bit-identically to the graph path; [`GraphScorer`] adapts any
//!   `SeqModel` (every baseline) to `Scorer`;
//! * [`train`] — BPR ranking (Eq. 21), CTR log loss (Eq. 24), and
//!   squared-error regression (Eq. 26) training loops on Adam;
//! * [`eval`] — leave-one-out HR/NDCG, AUC/RMSE, MAE/RRSE protocols (§V-C).
//!
//! ## Quickstart
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use seqfm_autograd::ParamStore;
//! use seqfm_core::{SeqFm, SeqFmConfig, SeqModel};
//! use seqfm_data::{build_instance, Batch, FeatureLayout};
//!
//! let layout = FeatureLayout { n_users: 10, n_items: 20 };
//! let mut ps = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = SeqFmConfig { d: 8, max_seq: 5, ..Default::default() };
//! let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
//!
//! // Will user 3, having visited items [1, 4, 2], interact with item 7?
//! let inst = build_instance(&layout, 3, 7, &[1, 4, 2], 5, 1.0);
//! let batch = Batch::try_from_instances(&[inst]).expect("valid batch");
//! let mut g = seqfm_autograd::Graph::new();
//! let score = model.forward(&mut g, &ps, &batch, false, &mut rng);
//! assert_eq!(g.value(score).numel(), 1);
//! ```

pub mod bounds;
pub mod config;
pub mod eval;
pub mod frozen;
pub mod model;
pub mod precision;
pub mod scorer;
pub mod train;
pub mod view;

pub use bounds::{EnvelopeDrift, ItemBlockStats, QueryBounds};
pub use config::{Ablation, SeqFmConfig};
pub use eval::{
    evaluate_ctr, evaluate_ctr_on, evaluate_ranking, evaluate_ranking_on, evaluate_rating,
    evaluate_rating_on, CtrEval, EvalSplit, RankingEvalConfig, RatingEval,
};
pub use frozen::FrozenSeqFm;
pub use model::SeqFm;
pub use precision::{FrozenParamsFast, ScorerPrecision};
pub use scorer::{GraphScorer, Scorer, Scratch};
pub use seqfm_autograd::ModelEpoch;
pub use train::{
    train_ctr, train_ctr_with_hook, train_ranking, train_ranking_with_hook, train_rating,
    train_rating_with_hook, TrainConfig, TrainReport,
};
pub use view::HistoryView;

use rand::rngs::StdRng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_data::Batch;

/// Common interface of SeqFM and every baseline: map a batch of
/// (static features, dynamic sequence) instances to one logit/score per
/// instance.
///
/// Implementations must be deterministic when `training == false` (dropout
/// and any other stochastic regulariser disabled).
///
/// `Send + Sync` is a supertrait requirement: models hold only parameter
/// ids and configuration (values live in the [`ParamStore`]), and
/// data-parallel training shares one model reference across worker threads.
pub trait SeqModel: Send + Sync {
    /// Model display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Computes a `[batch.len]`-shaped score tensor.
    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var;
}

// Boxed models forward the trait, so `Box<dyn SeqModel + Send + Sync>` (the
// registry's shareable output) plugs into generic consumers like
// [`GraphScorer`].
impl<M: SeqModel + ?Sized> SeqModel for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        (**self).forward(g, ps, batch, training, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use seqfm_data::{ranking::RankingConfig, FeatureLayout, LeaveOneOut, NegativeSampler, Scale};

    fn tiny_setup() -> (seqfm_data::Dataset, LeaveOneOut, FeatureLayout, NegativeSampler) {
        let mut cfg = RankingConfig::gowalla(Scale::Small);
        cfg.n_users = 24;
        cfg.n_items = 60;
        cfg.min_len = 6;
        cfg.max_len = 12;
        let ds = seqfm_data::ranking::generate(&cfg).unwrap();
        let split = LeaveOneOut::split(&ds);
        let layout = FeatureLayout::of(&ds);
        let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
        let sampler = NegativeSampler::new(ds.n_items, seen);
        (ds, split, layout, sampler)
    }

    #[test]
    fn bpr_training_reduces_loss_and_beats_chance() {
        let (_, split, layout, sampler) = tiny_setup();
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SeqFmConfig { d: 8, max_seq: 8, dropout: 0.1, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let tc =
            TrainConfig { epochs: 30, batch_size: 64, lr: 1e-2, max_seq: 8, ..Default::default() };
        let report = train_ranking(&model, &mut ps, &split, &layout, &sampler, &tc);
        assert_eq!(report.epoch_losses.len(), 30);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
        // Evaluation sanity: with J=20 negatives, random ranking gives
        // HR@5 ≈ 5/21 ≈ 0.24; a trained model must do better.
        let ec = RankingEvalConfig { negatives: 20, max_seq: 8, ..Default::default() };
        let acc = evaluate_ranking(&model, &ps, &split, &layout, &sampler, &ec);
        assert_eq!(acc.cases(), 24);
        assert!(acc.hr(5) > 0.28, "trained HR@5 {:.3} not above chance", acc.hr(5));
    }

    #[test]
    fn ctr_training_reduces_loss() {
        let (_, split, layout, sampler) = tiny_setup();
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SeqFmConfig { d: 8, max_seq: 8, dropout: 0.1, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let tc = TrainConfig {
            epochs: 20,
            batch_size: 96,
            lr: 1e-2,
            max_seq: 8,
            ctr_negatives: 3,
            ..Default::default()
        };
        let report = train_ctr(&model, &mut ps, &split, &layout, &sampler, &tc);
        assert!(report.final_loss() < report.epoch_losses[0]);
        let eval = evaluate_ctr(&model, &ps, &split, &layout, &sampler, 8, 1);
        assert!(eval.auc > 0.5, "AUC {:.3} at or below chance", eval.auc);
        assert!(eval.rmse < 0.75);
    }

    #[test]
    fn rating_training_beats_mean_predictor() {
        // Small but not starved: at ~30 users the per-item rating signal is
        // too thin for *any* model to beat the constant predictor on the
        // held-out last events, so the quality bar below would test luck,
        // not learning.
        let mut cfg = seqfm_data::rating::RatingConfig::beauty(Scale::Small);
        cfg.n_users = 64;
        cfg.n_items = 120;
        let ds = seqfm_data::rating::generate(&cfg).unwrap();
        let split = LeaveOneOut::split(&ds);
        let layout = FeatureLayout::of(&ds);
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mcfg = SeqFmConfig { d: 8, max_seq: 8, dropout: 0.3, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, &layout, mcfg);
        let tc =
            TrainConfig { epochs: 30, batch_size: 64, lr: 5e-3, max_seq: 8, ..Default::default() };
        let report = train_rating(&model, &mut ps, &split, &layout, &tc);
        assert!(report.final_loss() < report.epoch_losses[0]);
        assert!(report.target_offset > 2.0 && report.target_offset < 5.0);
        let eval = evaluate_rating(&model, &ps, &split, &layout, 8, report.target_offset);
        // The honest floor: always predicting the training-set mean. (Its
        // RRSE exceeds 1.0 here because the held-out *last* ratings are
        // distribution-shifted vs. the training prefix — the same effect
        // that puts the paper's FM baselines above 1.0 RRSE in Table IV.)
        let constant = vec![report.target_offset; split.test.len()];
        let truth: Vec<f32> = split.test.iter().map(|e| e.rating).collect();
        let base_mae = seqfm_metrics::mae(&constant, &truth);
        let base_rrse = seqfm_metrics::rrse(&constant, &truth);
        assert!(
            eval.rrse < base_rrse,
            "RRSE {:.3} not below constant-predictor {:.3}",
            eval.rrse,
            base_rrse
        );
        assert!(eval.mae < base_mae + 0.02, "MAE {:.3} vs baseline {:.3}", eval.mae, base_mae);
    }

    #[test]
    fn training_is_reproducible_under_fixed_seed() {
        let (_, split, layout, sampler) = tiny_setup();
        let run = || {
            let mut ps = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(11);
            let cfg = SeqFmConfig { d: 4, max_seq: 6, ..Default::default() };
            let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
            let tc = TrainConfig { epochs: 2, batch_size: 64, max_seq: 6, ..Default::default() };
            train_ranking(&model, &mut ps, &split, &layout, &sampler, &tc).epoch_losses
        };
        assert_eq!(run(), run());
    }
}
