//! Cached history-side work of a frozen forward pass: [`HistoryView`].
//!
//! SeqFM's split structure makes serving-side caching unusually cheap: in a
//! candidate-expansion batch every row shares the user's dynamic sequence,
//! and everything the frozen forward derives from that sequence *alone* —
//! the dynamic-view pooled representation, the cross view's history-row
//! Q/K/V projections, the dynamic linear term, the padding length — is
//! independent of the candidates being scored. A [`HistoryView`] packages
//! exactly those intermediates so a stateful serving layer can compute them
//! **once per history version** and reuse them across requests, instead of
//! once per request.
//!
//! Views are produced by
//! [`Scorer::build_history_view`](crate::Scorer::build_history_view) and
//! consumed by
//! [`Scorer::score_with_view_into`](crate::Scorer::score_with_view_into);
//! for [`FrozenSeqFm`](crate::FrozenSeqFm) the cached values are bitwise
//! the ones the plain forward would recompute, so view-based scoring is
//! **bit-identical** to scoring the same history inline.

/// The frozen forward's history-side intermediates for one dynamic
/// sequence (left-padded to the serving window), versioned and cached by
/// the serving layer.
///
/// A view is tied to the exact padded index row it was built from
/// ([`HistoryView::dyn_idx`]); scoring it against a batch with a different
/// dynamic block is a serving-layer bug and is rejected loudly rather than
/// silently producing stale scores.
///
/// Depending on the model's ablation switches some fields may be empty
/// (e.g. no `dyn_pooled` without the dynamic view); the scorer that built
/// the view knows which parts it filled.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistoryView {
    /// The left-padded dynamic index row this view caches (`nd` entries).
    pub(crate) dyn_idx: Vec<i64>,
    /// Embedding width the view was built at.
    pub(crate) d: usize,
    /// Number of leading padding slots in `dyn_idx`.
    pub(crate) pad: usize,
    /// Dynamic-side linear term Σ w˙\[i\] over non-pad history items.
    pub(crate) lin_d: f32,
    /// Pooled output of the dynamic view's attention + FFN stack, `[d]`
    /// (empty when the dynamic view is ablated away).
    pub(crate) dyn_pooled: Vec<f32>,
    /// Cross-view Q projections of the history rows, `[nd, d]` row-major
    /// (empty when the cross view is ablated away).
    pub(crate) hist_q: Vec<f32>,
    /// Cross-view K projections of the history rows, `[nd, d]`.
    pub(crate) hist_k: Vec<f32>,
    /// Cross-view V projections of the history rows, `[nd, d]`.
    pub(crate) hist_v: Vec<f32>,
}

impl HistoryView {
    /// The padded dynamic index row this view was built from.
    pub fn dyn_idx(&self) -> &[i64] {
        &self.dyn_idx
    }

    /// Width of the dynamic window (`nd`) the view covers.
    pub fn nd(&self) -> usize {
        self.dyn_idx.len()
    }

    /// Approximate heap footprint in bytes — what a bounded view cache
    /// budgets per entry.
    pub fn approx_bytes(&self) -> usize {
        self.dyn_idx.len() * std::mem::size_of::<i64>()
            + (self.dyn_pooled.len() + self.hist_q.len() + self.hist_k.len() + self.hist_v.len())
                * std::mem::size_of::<f32>()
    }
}
