//! SeqFM hyperparameters and ablation switches.

/// Ablation switches matching the paper's Table V plus two extensions.
///
/// Every switch defaults to the full model; turning one off produces the
/// corresponding "Remove X" variant from the ablation study (§VI-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ablation {
    /// Static-view self-attention head ("Remove SV" when false).
    pub static_view: bool,
    /// Dynamic-view (causal) self-attention head ("Remove DV" when false).
    pub dynamic_view: bool,
    /// Cross-view self-attention head ("Remove CV" when false).
    pub cross_view: bool,
    /// Residual connections in the FFN ("Remove RC" when false).
    pub residual: bool,
    /// Layer normalisation in the FFN ("Remove LN" when false).
    pub layer_norm: bool,
    /// **Extension** (not in the paper): padding-aware intra-view pooling —
    /// padded positions are excluded from the mean and the divisor is the
    /// true sequence length instead of n˙.
    pub masked_pooling: bool,
    /// **Extension**: share the residual FFN across views (paper behaviour,
    /// §III-F) vs. one FFN per view.
    pub shared_ffn: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation {
            static_view: true,
            dynamic_view: true,
            cross_view: true,
            residual: true,
            layer_norm: true,
            masked_pooling: false,
            shared_ffn: true,
        }
    }
}

impl Ablation {
    /// The paper's Table V variants, in paper order, with display names.
    pub fn table5_variants() -> Vec<(&'static str, Ablation)> {
        let base = Ablation::default();
        vec![
            ("Default", base),
            ("Remove SV", Ablation { static_view: false, ..base }),
            ("Remove DV", Ablation { dynamic_view: false, ..base }),
            ("Remove CV", Ablation { cross_view: false, ..base }),
            ("Remove RC", Ablation { residual: false, ..base }),
            ("Remove LN", Ablation { layer_norm: false, ..base }),
        ]
    }

    /// Extension variants benchmarked by `table5_ablation --extended`.
    pub fn extension_variants() -> Vec<(&'static str, Ablation)> {
        let base = Ablation::default();
        vec![
            ("+MaskedPool", Ablation { masked_pooling: true, ..base }),
            ("PerViewFFN", Ablation { shared_ffn: false, ..base }),
        ]
    }

    /// Number of active views (width of the aggregated representation is
    /// `views × d`, Eq. 17).
    pub fn active_views(&self) -> usize {
        usize::from(self.static_view)
            + usize::from(self.dynamic_view)
            + usize::from(self.cross_view)
    }
}

/// SeqFM hyperparameters (paper §IV-D / §V-D).
///
/// The paper's unified setting is `{d=64, l=1, n˙=20, ρ=0.6}`; the workspace
/// default shrinks `d` to 32 so every experiment runs quickly on CPU (the
/// paper itself shows d=16 already beats nearly all baselines, Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeqFmConfig {
    /// Latent dimension `d` (factorization factor).
    pub d: usize,
    /// Depth `l` of the shared residual feed-forward network.
    pub layers: usize,
    /// Maximum dynamic sequence length `n˙`.
    pub max_seq: usize,
    /// Dropout ratio ρ (drop probability) on FFN layers.
    pub dropout: f32,
    /// Ablation switches.
    pub ablation: Ablation,
}

impl Default for SeqFmConfig {
    fn default() -> Self {
        SeqFmConfig { d: 32, layers: 1, max_seq: 20, dropout: 0.6, ablation: Ablation::default() }
    }
}

impl SeqFmConfig {
    /// The paper's exact unified parameter set `{d=64, l=1, n˙=20, ρ=0.6}`.
    pub fn paper() -> Self {
        SeqFmConfig { d: 64, ..Default::default() }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if dimensions are zero, dropout is outside `[0, 1)`, or no view
    /// is active.
    pub fn validate(&self) {
        assert!(self.d > 0, "latent dimension must be positive");
        assert!(self.layers > 0, "FFN depth must be positive");
        assert!(self.max_seq > 0, "max sequence length must be positive");
        assert!((0.0..1.0).contains(&self.dropout), "dropout must be in [0,1)");
        assert!(self.ablation.active_views() > 0, "at least one view must remain active");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_shape() {
        let c = SeqFmConfig::default();
        assert_eq!(c.layers, 1);
        assert_eq!(c.max_seq, 20);
        assert!((c.dropout - 0.6).abs() < 1e-6);
        assert_eq!(c.ablation.active_views(), 3);
        c.validate();
        assert_eq!(SeqFmConfig::paper().d, 64);
    }

    #[test]
    fn table5_has_six_variants_in_paper_order() {
        let v = Ablation::table5_variants();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0].0, "Default");
        assert!(!v[1].1.static_view);
        assert!(!v[2].1.dynamic_view);
        assert!(!v[3].1.cross_view);
        assert!(!v[4].1.residual);
        assert!(!v[5].1.layer_norm);
        // each variant differs from default in exactly the named switch
        for (name, ab) in &v[1..] {
            assert_eq!(
                ab.active_views() + usize::from(ab.residual) + usize::from(ab.layer_norm),
                4,
                "variant {name} should disable exactly one switch"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one view")]
    fn all_views_removed_is_invalid() {
        let mut c = SeqFmConfig::default();
        c.ablation.static_view = false;
        c.ablation.dynamic_view = false;
        c.ablation.cross_view = false;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "dropout")]
    fn dropout_one_is_invalid() {
        let c = SeqFmConfig { dropout: 1.0, ..Default::default() };
        c.validate();
    }
}
