//! Sound per-block score upper bounds for full-catalog retrieval.
//!
//! Retrieval scans the item catalog in blocks; a block whose **upper bound**
//! is provably below the current k-th best score cannot contribute to the
//! final top-K and can skip the attention term entirely. The bound here is
//! *sound by construction* — for every item `c` in the block,
//! `score(c) <= block_upper_bound(..)` — so pruning never changes the
//! retrieved set, and surviving logits stay bit-identical to a brute-force
//! scan (block composition never affects per-row arithmetic).
//!
//! ## Why the bound is sound
//!
//! SeqFM's logit decomposes (Eq. 4/17/18) as
//!
//! ```text
//! f(c) = Σ_views  pooled_view(c) · p_view  +  lin°(u) + lin°(c) + lin˙ + w₀
//! ```
//!
//! Each view's pooled vector is produced by attention → mean-pool → FFN:
//!
//! * **Attention rows are convex combinations of V rows** (softmax weights
//!   are non-negative and sum to one over whichever positions the mask
//!   admits), so every attention output lies coordinate-wise inside the
//!   envelope `[min, max]` of the view's V-projected input rows. Pooling —
//!   plain mean or the masked-pooling subset average — is again convex, so
//!   the pooled vector stays inside the same envelope.
//! * The per-view V rows split into a **query part** (the user's static
//!   feature, the history rows) and an **item part** (the candidate's
//!   static feature). [`ItemBlockStats`] holds the coordinate-wise envelope
//!   of the item parts over a block, computed at index build with the same
//!   `f32` projection kernel the forward pass runs — the envelope is exact
//!   for the values the forward actually sees.
//! * The FFN is propagated through **interval arithmetic in `f64`**
//!   (layer-norm via a refined deviation-interval analysis, linear layers
//!   via sign-aware interval matmul, ReLU and residual exactly), and the
//!   final projection takes the sign-aware maximum of each coordinate
//!   interval against `p`.
//! * The **dynamic view** does not depend on the candidate at all; its
//!   contribution is evaluated *exactly* per query from the cached
//!   [`HistoryView`], not bounded.
//!
//! `f32` rounding in the real forward (softmax weights summing to 1 ± ε,
//! accumulation order) is absorbed by widening every leaf interval and the
//! final bound by a relative + absolute slack that is orders of magnitude
//! above the achievable drift at these dimensions — a margin the
//! Monte-Carlo test below exercises across every Table-V variant.

use crate::frozen::{FrozenSeqFm, LN_EPS};
use crate::view::HistoryView;
use seqfm_data::FeatureLayout;

/// Per-coordinate leaf-interval widening (absolute / relative), covering
/// `f32` rounding of projection, attention, and pooling.
const COORD_SLACK: f64 = 1e-4;
/// Final-bound widening (absolute / relative), covering the output
/// projection's and linear terms' `f32` accumulation.
const FINAL_SLACK: f64 = 1e-3;

/// Build-time envelope of one catalog block's candidate-dependent score
/// terms: the coordinate-wise `[min, max]` of the items' V projections per
/// attention view, and the largest item linear weight. The block is any set
/// of item ids — retrieval indexes sort the catalog by linear partial score
/// before blocking, so blocks need not be contiguous id ranges.
///
/// Built once per block by [`FrozenSeqFm::item_block_stats`]; independent of
/// any query.
#[derive(Clone, Debug)]
pub struct ItemBlockStats {
    /// `max_c lin°(c)` over the block (item linear weights are exact `f32`).
    pub lin_max: f32,
    /// Static-view V-projection envelope, `[d]` lows (empty when the static
    /// view is ablated).
    pub vs_min: Vec<f32>,
    /// Static-view V-projection envelope, `[d]` highs.
    pub vs_max: Vec<f32>,
    /// Cross-view V-projection envelope, `[d]` lows (empty when the cross
    /// view is ablated).
    pub vx_min: Vec<f32>,
    /// Cross-view V-projection envelope, `[d]` highs.
    pub vx_max: Vec<f32>,
}

impl ItemBlockStats {
    /// This envelope widened by `delta` in every coordinate (and `lin_max`
    /// replaced with a freshly computed value) — the delta-rebuild path:
    /// when the V-projection of every item in the block provably moved less
    /// than `delta` between two published models
    /// ([`FrozenSeqFm::block_envelope_drift`]), the widened envelope
    /// contains the new model's projections without re-running them.
    pub fn widened(&self, delta: f32, lin_max: f32) -> ItemBlockStats {
        let lo = |v: &[f32]| v.iter().map(|&x| x - delta).collect();
        let hi = |v: &[f32]| v.iter().map(|&x| x + delta).collect();
        ItemBlockStats {
            lin_max,
            vs_min: lo(&self.vs_min),
            vs_max: hi(&self.vs_max),
            vx_min: lo(&self.vx_min),
            vx_max: hi(&self.vx_max),
        }
    }
}

/// Model-pair factors for bounding envelope drift between two published
/// revisions, computed once per rebuild by [`FrozenSeqFm::envelope_drift`]
/// and shared across every block's [`FrozenSeqFm::block_envelope_drift`].
///
/// Holds, per bounded attention view (static and/or cross, as the ablation
/// admits), the Frobenius norms `(‖W_new‖_F, ‖W_new − W_old‖_F)` of the
/// view's **active-profile** V matrix — under [`Fast`], the `f16`-effective
/// copies the projections actually multiply.
///
/// [`Fast`]: crate::ScorerPrecision::Fast
#[derive(Clone, Debug)]
pub struct EnvelopeDrift {
    /// `(‖W_new‖_F, ‖ΔW‖_F)` per active envelope view.
    views: Vec<(f64, f64)>,
}

/// Relative padding on the analytic drift bound, absorbing the `f32`
/// rounding of the norm computations themselves.
const DRIFT_REL_SLACK: f64 = 1e-3;
/// Absolute padding on the analytic drift bound, absorbing the projection
/// kernels' accumulation rounding (both models' envelopes are built from
/// `f32` kernel outputs; the real-arithmetic drift bound must be widened to
/// cover both roundings). Orders of magnitude above achievable drift at
/// paper widths, orders of magnitude below any useful rebuild tolerance.
const DRIFT_ABS_SLACK: f64 = 1e-4;

/// Query-side bound terms, computed once per retrieval from the user's
/// cached [`HistoryView`] by [`FrozenSeqFm::query_bounds`] and shared across
/// every block's [`FrozenSeqFm::block_upper_bound`] call.
#[derive(Clone, Debug)]
pub struct QueryBounds {
    /// The user feature's static-view V row (empty when ablated).
    vs_user: Vec<f32>,
    /// Cross-view envelope of the query-side rows: the user feature's V row
    /// merged with every history row's V projection (empty when ablated).
    vx_lo: Vec<f32>,
    /// Cross-view query-side envelope, highs.
    vx_hi: Vec<f32>,
    /// Exact dynamic-view contribution `dyn_pooled · p_dyn` (`f64`); the
    /// dynamic view never depends on the candidate.
    dyn_exact: f64,
    /// `lin°(user) + lin˙ + w₀`, exact in `f64`.
    lin_base: f64,
    /// Sound spectral-norm upper bounds, `spec[ffn][layer]`, for each FFN
    /// layer's effective matrix (`scale∘W` under layer norm, `W` without).
    /// Model constants, but recomputed per retrieval here — a few `d³`
    /// multiplies, negligible next to scoring even one block.
    spec: Vec<Vec<f64>>,
}

impl FrozenSeqFm {
    /// Computes the candidate-side bound envelope for the catalog block
    /// holding exactly the items in `items` (any ids, any order), using the
    /// same `f32` projection kernels as the forward pass (the envelope is
    /// exact for the V rows scoring will see).
    ///
    /// # Panics
    /// Panics if `items` is empty or any id is outside `layout`'s item
    /// range.
    pub fn item_block_stats(&self, layout: &FeatureLayout, items: &[u32]) -> ItemBlockStats {
        assert!(!items.is_empty(), "catalog block must hold at least one item");
        let d = self.config().d;
        let ab = self.config().ablation;
        let n = items.len();
        let idx: Vec<i64> = items
            .iter()
            .map(|&c| {
                assert!((c as usize) < layout.n_items, "item {c} outside layout");
                layout.item_feature(c)
            })
            .collect();
        let mut e = vec![0.0f32; n * d];
        self.gather_static(&idx, d, &mut e);
        let mut proj = vec![0.0f32; n * d];
        let mut envelope = |view: usize| -> (Vec<f32>, Vec<f32>) {
            self.project_view(&e, view, 2, n, &mut proj);
            let mut lo = vec![f32::INFINITY; d];
            let mut hi = vec![f32::NEG_INFINITY; d];
            for row in proj[..n * d].chunks_exact(d) {
                for ((l, h), &v) in lo.iter_mut().zip(hi.iter_mut()).zip(row) {
                    *l = l.min(v);
                    *h = h.max(v);
                }
            }
            (lo, hi)
        };
        let (vs_min, vs_max) = if ab.static_view { envelope(0) } else { (Vec::new(), Vec::new()) };
        let (vx_min, vx_max) = if ab.cross_view { envelope(2) } else { (Vec::new(), Vec::new()) };
        let ws = self.t(self.w_static).data();
        let lin_max = idx.iter().map(|&i| ws[i as usize]).fold(f32::NEG_INFINITY, f32::max);
        ItemBlockStats { lin_max, vs_min, vs_max, vx_min, vx_max }
    }

    /// Computes the query-side bound terms for `user` and its cached
    /// history `view` — everything candidate-independent, shared by every
    /// block bound of one retrieval.
    ///
    /// # Panics
    /// Panics if `user` is outside `layout` or `view` was built at another
    /// width.
    pub fn query_bounds(
        &self,
        layout: &FeatureLayout,
        user: u32,
        view: &HistoryView,
    ) -> QueryBounds {
        assert!((user as usize) < layout.n_users, "user {user} outside layout");
        let d = self.config().d;
        assert_eq!(view.d, d, "history view built at width {} but model is {d}", view.d);
        let ab = self.config().ablation;
        let uf = [layout.user_feature(user)];
        let mut e = vec![0.0f32; d];
        self.gather_static(&uf, d, &mut e);

        let mut vs_user = Vec::new();
        if ab.static_view {
            vs_user = vec![0.0f32; d];
            self.project_view(&e, 0, 2, 1, &mut vs_user);
        }

        let (mut vx_lo, mut vx_hi) = (Vec::new(), Vec::new());
        if ab.cross_view {
            let mut vx_user = vec![0.0f32; d];
            self.project_view(&e, 2, 2, 1, &mut vx_user);
            vx_lo = vx_user.clone();
            vx_hi = vx_user;
            // The cached history V projections are the forward pass's own
            // rows (bit-for-bit): PAD rows are exact zeros and participate.
            for row in view.hist_v.chunks_exact(d) {
                for ((l, h), &v) in vx_lo.iter_mut().zip(vx_hi.iter_mut()).zip(row) {
                    *l = l.min(v);
                    *h = h.max(v);
                }
            }
        }

        let mut dyn_exact = 0.0f64;
        if ab.dynamic_view {
            let col = usize::from(ab.static_view) * d;
            let p = self.t(self.p).data();
            for (&h, &pv) in view.dyn_pooled.iter().zip(&p[col..col + d]) {
                dyn_exact += h as f64 * pv as f64;
            }
        }

        let lin_base = self.t(self.w_static).data()[uf[0] as usize] as f64
            + view.lin_d as f64
            + self.t(self.w0).data()[0] as f64;
        let spec = self
            .ffns
            .iter()
            .enumerate()
            .map(|(fi, ffn)| {
                ffn.iter()
                    .enumerate()
                    .map(|(li, layer)| {
                        // The active profile's weights — the quantized
                        // effective matrix under `Fast`, so the spectral
                        // bound covers exactly what the fast FFN multiplies.
                        let w = self.ffn_w_data(fi, li);
                        let m: Vec<f64> = if ab.layer_norm {
                            let scale = self.t(layer.ln_scale).data();
                            (0..d * d).map(|ij| scale[ij / d] as f64 * w[ij] as f64).collect()
                        } else {
                            w.iter().map(|&x| x as f64).collect()
                        };
                        spec_ub(&m, d)
                    })
                    .collect()
            })
            .collect();
        QueryBounds { vs_user, vx_lo, vx_hi, dyn_exact, lin_base, spec }
    }

    /// Computes the shared factors for bounding how far this model's
    /// V-projection envelopes can sit from `old`'s — the once-per-rebuild
    /// half of the delta-rebuild bound (the per-block half is
    /// [`FrozenSeqFm::block_envelope_drift`]).
    ///
    /// Returns `None` when the pair is not delta-comparable: different
    /// width `d` or a different ablation (the envelope layout itself would
    /// change). Serving profiles may differ — each model contributes the
    /// weights its own forward pass actually reads.
    pub fn envelope_drift(&self, old: &FrozenSeqFm) -> Option<EnvelopeDrift> {
        let d = self.config().d;
        let ab = self.config().ablation;
        if old.config().d != d || old.config().ablation != ab {
            return None;
        }
        let mut views = Vec::new();
        for (view, active) in [(0usize, ab.static_view), (2, ab.cross_view)] {
            if !active {
                continue;
            }
            let wn = self.attn_w(view, 2);
            let wo = old.attn_w(view, 2);
            if wn.len() != d * d || wo.len() != d * d {
                return None;
            }
            let mut wf = 0.0f64;
            let mut dwf = 0.0f64;
            for (&a, &b) in wn.iter().zip(wo) {
                let (a, b) = (a as f64, b as f64);
                wf += a * a;
                let e = a - b;
                dwf += e * e;
            }
            views.push((wf.sqrt(), dwf.sqrt()));
        }
        Some(EnvelopeDrift { views })
    }

    /// A sound uniform bound on how far any coordinate of any of `items`'
    /// V-projections moved from `old` to `self`, for every bounded view:
    /// widening `old`'s block envelope by the returned `delta`
    /// ([`ItemBlockStats::widened`]) provably contains this model's
    /// projections of the same items.
    ///
    /// The decomposition: with `e` the item's static embedding row and `W`
    /// a view's V matrix,
    ///
    /// ```text
    /// e_new·W_new − e_old·W_old = Δe·W_new + e_old·ΔW
    /// ```
    ///
    /// so each output coordinate moves at most
    /// `‖Δe‖₂·‖W_new‖₂→∞ + ‖e_old‖₂·‖ΔW‖₂→∞`, which the Frobenius norms of
    /// [`EnvelopeDrift`] dominate column by column. Embedding norms come
    /// from the same profile-aware gathers the projections read, maximised
    /// over the block; the result is padded (relative + absolute) for the
    /// `f32` rounding of both models' projection kernels. Cost is
    /// `O(block·d)` — the factor-`d` saving over recomputing the envelope.
    ///
    /// # Panics
    /// Panics if any id in `items` is outside `layout`'s item range.
    pub fn block_envelope_drift(
        &self,
        drift: &EnvelopeDrift,
        old: &FrozenSeqFm,
        layout: &FeatureLayout,
        items: &[u32],
    ) -> f32 {
        let d = self.config().d;
        let n = items.len();
        let idx: Vec<i64> = items
            .iter()
            .map(|&c| {
                assert!((c as usize) < layout.n_items, "item {c} outside layout");
                layout.item_feature(c)
            })
            .collect();
        let mut e_new = vec![0.0f32; n * d];
        let mut e_old = vec![0.0f32; n * d];
        self.gather_static(&idx, d, &mut e_new);
        old.gather_static(&idx, d, &mut e_old);
        let mut max_de2 = 0.0f64;
        let mut max_eo2 = 0.0f64;
        for (rn, ro) in e_new.chunks_exact(d).zip(e_old.chunks_exact(d)) {
            let mut de2 = 0.0f64;
            let mut eo2 = 0.0f64;
            for (&a, &b) in rn.iter().zip(ro) {
                let (a, b) = (a as f64, b as f64);
                let e = a - b;
                de2 += e * e;
                eo2 += b * b;
            }
            max_de2 = max_de2.max(de2);
            max_eo2 = max_eo2.max(eo2);
        }
        let (max_de, max_eo) = (max_de2.sqrt(), max_eo2.sqrt());
        let delta =
            drift.views.iter().map(|&(wf, dwf)| max_de * wf + max_eo * dwf).fold(0.0f64, f64::max);
        (delta + DRIFT_REL_SLACK * delta + DRIFT_ABS_SLACK) as f32
    }

    /// The static linear weight `lin°(c)` of one catalog item — the
    /// candidate's entire attention-free partial score, exposed so
    /// retrieval indexes can precompute it catalog-wide.
    ///
    /// # Panics
    /// Panics if `item` is outside `layout`.
    pub fn item_linear(&self, layout: &FeatureLayout, item: u32) -> f32 {
        assert!((item as usize) < layout.n_items, "item {item} outside layout");
        self.t(self.w_static).data()[layout.item_feature(item) as usize]
    }

    /// A sound upper bound on `score(c)` over every item `c` of the block
    /// described by `stats`, for the query described by `q`: no item in the
    /// block can score above the returned value (NaN logits rank below
    /// everything and need no bound).
    pub fn block_upper_bound(&self, q: &QueryBounds, stats: &ItemBlockStats) -> f32 {
        let d = self.config().d;
        let ab = self.config().ablation;
        let p = self.t(self.p).data();
        let mut ub = q.lin_base + stats.lin_max as f64;
        let mut lo = vec![0.0f64; d];
        let mut hi = vec![0.0f64; d];
        let mut col = 0usize;
        let mut ffn_idx = 0usize;
        if ab.static_view {
            for i in 0..d {
                lo[i] = q.vs_user[i].min(stats.vs_min[i]) as f64;
                hi[i] = q.vs_user[i].max(stats.vs_max[i]) as f64;
            }
            widen(&mut lo, &mut hi);
            let (c, r) = self.ffn_interval(ffn_idx, &q.spec, &mut lo, &mut hi);
            ub += seg_bound(&lo, &hi, &c, r, &p[col..col + d]);
            col += d;
            ffn_idx += 1;
        }
        if ab.dynamic_view {
            ub += q.dyn_exact;
            col += d;
            ffn_idx += 1;
        }
        if ab.cross_view {
            for i in 0..d {
                lo[i] = q.vx_lo[i].min(stats.vx_min[i]) as f64;
                hi[i] = q.vx_hi[i].max(stats.vx_max[i]) as f64;
            }
            widen(&mut lo, &mut hi);
            let (c, r) = self.ffn_interval(ffn_idx, &q.spec, &mut lo, &mut hi);
            ub += seg_bound(&lo, &hi, &c, r, &p[col..col + d]);
        }
        let _ = col;
        (ub + FINAL_SLACK + FINAL_SLACK * ub.abs()) as f32
    }

    /// Propagates a coordinate interval through one view's FFN stack
    /// (layer norm → linear+bias → ReLU → residual, per the ablation), in
    /// `f64` interval arithmetic, widening after each layer to absorb the
    /// real forward's `f32` rounding. Returns an **ℓ2 ball** `(center, r)`
    /// that also contains the output — the caller takes the tighter of box
    /// and ball against the projection vector.
    ///
    /// The box alone is loose: interval matmul and the final dot product
    /// both assume every coordinate sits at its worst corner simultaneously,
    /// costing a `√d`-ish factor each. The ball recovers it two ways:
    ///
    /// * Under layer norm the normalised vector `z` satisfies
    ///   `Σ z_i² = d·σ²/(σ²+ε) ≤ d` **exactly**, so the linear output lies
    ///   in a ball of radius `√d·σ(scale∘W)` around `b + Wᵀ ln_bias` —
    ///   independent of how wide the input box is (this is what rescues the
    ///   degenerate case where the variance bracket collapses and the box
    ///   hits the `±√d` cap in every coordinate). Per column, the weaker
    ///   Cauchy–Schwarz form `±√d·‖scale∘w_col‖₂` is also intersected into
    ///   the box.
    /// * Without layer norm the incoming ball maps through the linear layer
    ///   with a sound spectral-norm bound (`q.spec`), ReLU is 1-Lipschitz in
    ///   ℓ2 (center clamps, radius unchanged), and residual adds centers and
    ///   radii. The box is intersected with the ball per coordinate after
    ///   every layer, so each representation tightens the other.
    fn ffn_interval(
        &self,
        ffn_idx: usize,
        spec_all: &[Vec<f64>],
        lo: &mut [f64],
        hi: &mut [f64],
    ) -> (Vec<f64>, f64) {
        let d = lo.len();
        let cap = (d as f64).sqrt();
        let ab = self.config().ablation;
        let which = if ab.shared_ffn { 0 } else { ffn_idx };
        let ffn = &self.ffns[which];
        let spec = &spec_all[which];
        // Entry ball: box midpoint, radius = ℓ2 norm of the half-widths
        // (the farthest corner) — a lossless box→ball conversion.
        let mut center: Vec<f64> = lo.iter().zip(hi.iter()).map(|(l, h)| 0.5 * (l + h)).collect();
        let mut rad =
            lo.iter().zip(hi.iter()).map(|(l, h)| 0.25 * (h - l) * (h - l)).sum::<f64>().sqrt();
        let mut nlo = vec![0.0f64; d];
        let mut nhi = vec![0.0f64; d];
        let mut llo = vec![0.0f64; d];
        let mut lhi = vec![0.0f64; d];
        let mut bc = vec![0.0f64; d];
        for (li, layer) in ffn.iter().enumerate() {
            let mut ln_params: Option<(&[f32], &[f32])> = None;
            let (src_lo, src_hi): (&[f64], &[f64]) = if ab.layer_norm {
                let scale = self.t(layer.ln_scale).data();
                let bias = self.t(layer.ln_bias).data();
                ln_interval(lo, hi, scale, bias, &mut nlo, &mut nhi);
                ln_params = Some((scale, bias));
                (&nlo, &nhi)
            } else {
                (lo, hi)
            };
            let w = self.ffn_w_data(which, li);
            let b = self.t(layer.b).data();
            for j in 0..d {
                let mut alo = b[j] as f64;
                let mut ahi = alo;
                for i in 0..d {
                    let wij = w[i * d + j] as f64;
                    let (x, y) = (src_lo[i] * wij, src_hi[i] * wij);
                    alo += x.min(y);
                    ahi += x.max(y);
                }
                if let Some((scale, bias)) = ln_params {
                    let mut c = b[j] as f64;
                    let mut rad2 = 0.0f64;
                    for i in 0..d {
                        let wij = w[i * d + j] as f64;
                        c += bias[i] as f64 * wij;
                        let sw = scale[i] as f64 * wij;
                        rad2 += sw * sw;
                    }
                    let r = cap * rad2.sqrt();
                    // Both bounds are sound, so their intersection is too.
                    alo = alo.max(c - r);
                    ahi = ahi.min(c + r);
                }
                // ReLU.
                llo[j] = alo.max(0.0);
                lhi[j] = ahi.max(0.0);
            }
            // Ball through the same layer.
            let br = if let Some((_, bias)) = ln_params {
                for (j, c) in bc.iter_mut().enumerate() {
                    let mut s = b[j] as f64;
                    for (i, &bi) in bias.iter().enumerate() {
                        s += bi as f64 * w[i * d + j] as f64;
                    }
                    *c = s;
                }
                cap * spec[li]
            } else {
                for (j, c) in bc.iter_mut().enumerate() {
                    let mut s = b[j] as f64;
                    for (i, &ci) in center.iter().enumerate() {
                        s += ci * w[i * d + j] as f64;
                    }
                    *c = s;
                }
                rad * spec[li]
            };
            // ReLU is 1-Lipschitz in ℓ2: clamp the center, keep the radius.
            for c in bc.iter_mut() {
                *c = c.max(0.0);
            }
            if ab.residual {
                for i in 0..d {
                    lo[i] += llo[i];
                    hi[i] += lhi[i];
                    center[i] += bc[i];
                }
                rad += br;
            } else {
                lo.copy_from_slice(&llo);
                hi.copy_from_slice(&lhi);
                center.copy_from_slice(&bc);
                rad = br;
            }
            widen(lo, hi);
            let cmax = center.iter().fold(0.0f64, |a, &c| a.max(c.abs()));
            rad += COORD_SLACK * (1.0 + cmax + rad);
            // Box ∩ ball, per coordinate.
            for i in 0..d {
                lo[i] = lo[i].max(center[i] - rad);
                hi[i] = hi[i].min(center[i] + rad);
            }
        }
        (center, rad)
    }
}

/// Widens an interval by [`COORD_SLACK`] (absolute + relative) per
/// coordinate — the margin for the `f32` forward's rounding.
fn widen(lo: &mut [f64], hi: &mut [f64]) {
    for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
        let w = COORD_SLACK + COORD_SLACK * l.abs().max(h.abs());
        *l -= w;
        *h += w;
    }
}

/// Sign-aware upper bound of `x · p` over `x` in the coordinate box
/// `[lo, hi]`.
fn seg_upper(lo: &[f64], hi: &[f64], p: &[f32]) -> f64 {
    lo.iter()
        .zip(hi)
        .zip(p)
        .map(|((&l, &h), &pv)| {
            let pv = pv as f64;
            (l * pv).max(h * pv)
        })
        .sum()
}

/// Upper bound of `x · p` over `x` in box `[lo, hi]` **and** in the ℓ2 ball
/// `(center, rad)` — the tighter of the two sound bounds (the ball side is
/// Cauchy–Schwarz: `x·p ≤ center·p + rad·‖p‖₂`).
fn seg_bound(lo: &[f64], hi: &[f64], center: &[f64], rad: f64, p: &[f32]) -> f64 {
    let box_ub = seg_upper(lo, hi, p);
    let mut dot = 0.0f64;
    let mut nrm2 = 0.0f64;
    for (&c, &pv) in center.iter().zip(p) {
        let pv = pv as f64;
        dot += c * pv;
        nrm2 += pv * pv;
    }
    box_ub.min(dot + rad * nrm2.sqrt())
}

/// A sound upper bound on the spectral norm `σ(M)` of a `d×d` matrix:
/// `σ(M)⁸ = λmax((MᵀM)⁴) ≤ ‖(MᵀM)⁴‖_∞`, since the induced ∞-norm (max
/// absolute row sum) dominates the spectral radius of the PSD Gram matrix.
/// Two Gram squarings bring the crude row-sum bound to within a few percent
/// of the true norm — unlike power iteration, which only bounds from below
/// and would be unsound here.
fn spec_ub(m: &[f64], d: usize) -> f64 {
    let mut g = vec![0.0f64; d * d];
    for j in 0..d {
        for k in 0..d {
            let mut s = 0.0f64;
            for i in 0..d {
                s += m[i * d + j] * m[i * d + k];
            }
            g[j * d + k] = s;
        }
    }
    let sq = |a: &[f64]| -> Vec<f64> {
        let mut out = vec![0.0f64; d * d];
        for i in 0..d {
            for k in 0..d {
                let aik = a[i * d + k];
                if aik != 0.0 {
                    for (o, &akj) in out[i * d..i * d + d].iter_mut().zip(&a[k * d..k * d + d]) {
                        *o += aik * akj;
                    }
                }
            }
        }
        out
    };
    let g4 = sq(&sq(&g));
    (0..d)
        .map(|i| g4[i * d..i * d + d].iter().map(|x| x.abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
        .powf(0.125)
}

/// Interval layer norm: maps the coordinate box `[lo, hi]` through
/// `(x - μ(x)) / √(σ²(x) + ε) * scale + bias` soundly.
///
/// The deviation `c_i = x_i - μ` lies in `[lo_i - μ_hi, hi_i - μ_lo]`; the
/// variance is bracketed from the per-coordinate squared-deviation
/// intervals; and the normalised value is additionally capped at `±√d`,
/// which holds unconditionally because `σ² ≥ c_i² / d`. The cap keeps the
/// bound finite and tight even when the input box is wide, which is what
/// lets blocks actually prune.
fn ln_interval(
    lo: &[f64],
    hi: &[f64],
    scale: &[f32],
    bias: &[f32],
    out_lo: &mut [f64],
    out_hi: &mut [f64],
) {
    let d = lo.len();
    let df = d as f64;
    let mu_lo = lo.iter().sum::<f64>() / df;
    let mu_hi = hi.iter().sum::<f64>() / df;
    let mut var_lo = 0.0f64;
    let mut var_hi = 0.0f64;
    for i in 0..d {
        let clo = lo[i] - mu_hi;
        let chi = hi[i] - mu_lo;
        let (a, b) = (clo * clo, chi * chi);
        if clo <= 0.0 && chi >= 0.0 {
            var_hi += a.max(b);
        } else {
            var_lo += a.min(b);
            var_hi += a.max(b);
        }
    }
    var_lo /= df;
    var_hi /= df;
    let eps = LN_EPS as f64;
    let inv_hi = 1.0 / (var_lo + eps).sqrt();
    let inv_lo = 1.0 / (var_hi + eps).sqrt();
    let cap = df.sqrt();
    for i in 0..d {
        let clo = lo[i] - mu_hi;
        let chi = hi[i] - mu_lo;
        let z_hi = if chi >= 0.0 { (chi * inv_hi).min(cap) } else { chi * inv_lo };
        let z_lo = if clo <= 0.0 { (clo * inv_hi).max(-cap) } else { clo * inv_lo };
        let (s, b) = (scale[i] as f64, bias[i] as f64);
        let (x, y) = (z_lo * s, z_hi * s);
        out_lo[i] = x.min(y) + b;
        out_hi[i] = x.max(y) + b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ablation, SeqFmConfig};
    use crate::scorer::Scratch;
    use crate::{Scorer, SeqFm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_data::{build_instance, Batch};

    fn all_variants() -> Vec<(&'static str, Ablation)> {
        let mut v = Ablation::table5_variants();
        v.extend(Ablation::extension_variants());
        v
    }

    /// Monte-Carlo soundness: for random models across every variant, every
    /// item's true logit must sit at or below its block's upper bound — in
    /// whichever precision profile the model serves.
    fn dominance_check(precision: crate::ScorerPrecision) {
        let layout = FeatureLayout { n_users: 7, n_items: 41 };
        let max_seq = 6;
        let block = 8usize;
        for seed in [2u64, 9, 23] {
            for (name, ab) in all_variants() {
                let cfg =
                    SeqFmConfig { d: 8, max_seq, dropout: 0.0, ablation: ab, ..Default::default() };
                let mut ps = ParamStore::new();
                let mut rng = StdRng::seed_from_u64(seed);
                let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
                let frozen = FrozenSeqFm::freeze(&model, &ps).with_precision(precision);
                let mut scratch = Scratch::new();
                for (user, hist) in
                    [(0u32, vec![]), (3, vec![1u32, 4, 2]), (6, vec![0, 5, 7, 2, 40, 3])]
                {
                    let inst = build_instance(&layout, user, 0, &hist, max_seq, 0.0);
                    let row = &inst.dyn_idx;
                    let view = frozen.history_view(row, &mut scratch);
                    let q = frozen.query_bounds(&layout, user, &view);
                    let mut batch = Batch::default();
                    // A strided permutation of the catalog: blocks are
                    // non-contiguous, exactly like a lin-sorted index's.
                    let n = layout.n_items as u32;
                    let catalog: Vec<u32> = (0..n).map(|i| (i * 7) % n).collect();
                    for items in catalog.chunks(block) {
                        let stats = frozen.item_block_stats(&layout, items);
                        let ub = frozen.block_upper_bound(&q, &stats);
                        let mut out = Vec::new();
                        frozen.score_catalog_into(
                            &layout,
                            user,
                            items,
                            &view,
                            &mut batch,
                            &mut scratch,
                            &mut out,
                        );
                        for (&c, &s) in items.iter().zip(&out) {
                            assert!(
                                s <= ub,
                                "{name} seed {seed} user {user}: item {c} scores {s} above \
                                 block bound {ub}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn block_upper_bound_dominates_every_true_score() {
        dominance_check(crate::ScorerPrecision::Exact);
    }

    /// The same soundness chain under the fast profile: the envelopes and
    /// spectral bounds route through the quantized effective weights and
    /// the fast projection kernels, so the bound must dominate the fast
    /// scorer's logits just as tightly.
    #[test]
    fn block_upper_bound_dominates_fast_profile_scores_too() {
        dominance_check(crate::ScorerPrecision::Fast);
    }

    /// Delta-rebuild soundness: after perturbing the embeddings and the
    /// attention V matrices, the *old* block envelope widened by
    /// [`FrozenSeqFm::block_envelope_drift`] must contain the *new* model's
    /// freshly computed envelope — the containment claim `rebuild_for`
    /// relies on when it reuses a block's stats instead of recomputing them.
    #[test]
    fn widened_old_envelope_contains_the_perturbed_models_envelope() {
        let layout = FeatureLayout { n_users: 7, n_items: 41 };
        let cfg = SeqFmConfig { d: 8, max_seq: 6, dropout: 0.0, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(17);
        let _model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let old = FrozenSeqFm::freeze(&_model, &ps);
        // A small but non-trivial update, the size of one optimizer step.
        for (name, step) in [
            ("seqfm.emb_static.table", 8e-4f32),
            ("seqfm.attn_static.wv.w", -5e-4),
            ("seqfm.attn_cross.wv.w", 4e-4),
        ] {
            let id = ps.id_of(name).expect(name);
            for (i, w) in ps.value_mut(id).data_mut().iter_mut().enumerate() {
                *w += step * (1.0 + (i % 5) as f32 * 0.3);
            }
        }
        let new = FrozenSeqFm::freeze(&_model, &ps);
        let probe = new.envelope_drift(&old).expect("same d and ablation");
        let n = layout.n_items as u32;
        let catalog: Vec<u32> = (0..n).map(|i| (i * 7) % n).collect();
        let mut reused = 0usize;
        for items in catalog.chunks(8) {
            let delta = new.block_envelope_drift(&probe, &old, &layout, items);
            assert!(delta.is_finite() && delta > 0.0, "drift bound must be a positive float");
            if delta <= 0.05 {
                reused += 1;
            }
            let fresh = new.item_block_stats(&layout, items);
            let widened = old.item_block_stats(&layout, items).widened(delta, fresh.lin_max);
            let contains = |flo: &[f32], fhi: &[f32], wlo: &[f32], whi: &[f32]| {
                for i in 0..flo.len() {
                    assert!(
                        wlo[i] <= flo[i] && fhi[i] <= whi[i],
                        "coord {i}: fresh [{}, {}] outside widened [{}, {}] (delta {delta})",
                        flo[i],
                        fhi[i],
                        wlo[i],
                        whi[i]
                    );
                }
            };
            contains(&fresh.vs_min, &fresh.vs_max, &widened.vs_min, &widened.vs_max);
            contains(&fresh.vx_min, &fresh.vx_max, &widened.vx_min, &widened.vx_max);
        }
        // The perturbation is small, so the drift bound must be usable: the
        // delta-rebuild tolerance (0.05 in seqfm-retrieval) would accept it.
        assert!(reused > 0, "a one-step perturbation should fall inside a usable tolerance");
    }

    /// Delta comparability gates: width or ablation changes make the pair
    /// non-comparable and `envelope_drift` must refuse.
    #[test]
    fn envelope_drift_refuses_incompatible_pairs() {
        let layout = FeatureLayout { n_users: 4, n_items: 9 };
        let freeze = |cfg: SeqFmConfig, seed: u64| {
            let mut ps = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let m = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
            FrozenSeqFm::freeze(&m, &ps)
        };
        let base = SeqFmConfig { d: 8, max_seq: 4, dropout: 0.0, ..Default::default() };
        let a = freeze(base, 1);
        let wider = freeze(SeqFmConfig { d: 16, ..base }, 1);
        assert!(a.envelope_drift(&wider).is_none(), "width change is not delta-comparable");
        let ablated = freeze(
            SeqFmConfig { ablation: Ablation { cross_view: false, ..Ablation::default() }, ..base },
            1,
        );
        assert!(a.envelope_drift(&ablated).is_none(), "ablation change is not delta-comparable");
        assert!(a.envelope_drift(&freeze(base, 2)).is_some(), "same shape is comparable");
    }

    /// The blocked catalog scorer must agree bit-for-bit with scoring the
    /// same candidate expansion through the plain batch path.
    #[test]
    fn score_catalog_into_matches_plain_expansion_bitwise() {
        let layout = FeatureLayout { n_users: 4, n_items: 13 };
        let cfg = SeqFmConfig { d: 8, max_seq: 5, dropout: 0.0, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let frozen = FrozenSeqFm::freeze(&model, &ps);
        let mut scratch = Scratch::new();
        let hist = [2u32, 7, 1];
        let insts: Vec<_> =
            (0..13).map(|c| build_instance(&layout, 1, c as u32, &hist, 5, 0.0)).collect();
        let plain = Batch::try_from_instances(&insts).expect("valid batch");
        let expect = frozen.score(&plain, &mut scratch).to_vec();
        let view = frozen.history_view(&plain.dyn_idx[..5], &mut scratch);
        let mut batch = Batch::default();
        let mut got = Vec::new();
        let ids: Vec<u32> = (0..13).collect();
        for (lo, hi) in [(0usize, 4usize), (4, 9), (9, 13)] {
            frozen.score_catalog_into(
                &layout,
                1,
                &ids[lo..hi],
                &view,
                &mut batch,
                &mut scratch,
                &mut got,
            );
        }
        assert_eq!(got.len(), expect.len());
        for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
            assert_eq!(e.to_bits(), g.to_bits(), "item {i} diverges ({e} vs {g})");
        }
    }
}
