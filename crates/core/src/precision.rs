//! Reduced-precision serving profile: [`ScorerPrecision`] and the quantized
//! parameter bundle [`FrozenParamsFast`].
//!
//! The exact serving path ([`crate::FrozenSeqFm`] at
//! [`ScorerPrecision::Exact`]) replays the training graph's `f32` arithmetic
//! bit for bit. The **fast** profile trades that bit-exactness for
//! throughput along three axes, all deterministic:
//!
//! 1. **Storage** — the big embedding tables are stored as IEEE `binary16`
//!    (`f16`) bit patterns and widened to `f32` at gather time, halving the
//!    memory traffic of the dominant full-catalog gather. The per-view
//!    attention projection matrices are quantized the same way; the FFN
//!    weight matrices use symmetric per-row `i8` with an `f32` scale.
//! 2. **Compute** — matmuls and attention run the fused-FMA kernels
//!    (`mul_add` / `vfmadd`), and the softmax uses the deterministic
//!    polynomial `exp_fast`. Both are correctly rounded or
//!    polynomial-deterministic, so fast logits are *identical across the
//!    AVX2 and scalar dispatch arms* — "fast" never means "run-to-run
//!    varying".
//! 3. **Bounds** — the small quantized matrices are eagerly dequantized once
//!    into cached `f32` *effective* weights `θ′ = decode(encode(θ))`; both
//!    the fast forward pass and the retrieval pruning bounds read `θ′`, so
//!    the quantization error contributes **zero** width to the pruning
//!    envelope and pruned fast retrieval stays bitwise-equal to brute-force
//!    fast retrieval.
//!
//! The documented per-logit error budget versus the exact profile is
//! `|fast − exact| ≤ 2e-2 + 1e-2·|exact|` on the paper's Table-V
//! configurations; the dominant term is the `f16` embedding step
//! (relative error ≤ 2⁻¹¹ ≈ 4.9e-4 per coordinate), with the FMA/`exp_fast`
//! drift two to three orders of magnitude below it. The
//! `precision_parity` integration tests pin both the ε envelope and
//! ranking-order preservation on every Table-V variant.

use crate::frozen::FrozenSeqFm;
use seqfm_data::PAD;
use seqfm_tensor::{f16_from_f32, f32_from_f16, widen_f16, Tensor};

/// Which arithmetic profile a frozen scorer runs.
///
/// * [`Exact`](ScorerPrecision::Exact) — bit-identical to the training
///   graph; the reference the fast profile is validated against.
/// * [`Fast`](ScorerPrecision::Fast) — `f16`/`i8` parameter storage plus
///   fused-FMA kernels and a polynomial softmax `exp`. Deterministic on
///   every target (identical bits on the AVX2 and forced-scalar arms), with
///   a documented per-logit ε versus `Exact` (see the
///   [module docs](crate::precision)).
///
/// Select it per engine via `EngineConfig::builder().precision(..)` or
/// directly with [`FrozenSeqFm::with_precision`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ScorerPrecision {
    /// Bit-exact `f32` serving — replays the graph arithmetic exactly.
    #[default]
    Exact,
    /// Reduced-precision serving: quantized parameters + fused-FMA kernels.
    Fast,
}

/// An `f16`-encoded embedding table: `rows × d` IEEE `binary16` bit
/// patterns, widened to `f32` on gather (hardware `vcvtph2ps` when
/// available — the widening is bit-identical either way).
pub(crate) struct F16Table {
    rows: usize,
    d: usize,
    bits: Vec<u16>,
}

impl F16Table {
    fn from_tensor(t: &Tensor, d: usize) -> Self {
        let data = t.data();
        assert_eq!(data.len() % d, 0, "F16Table: table len not a multiple of d");
        let bits = data.iter().map(|&x| f16_from_f32(x)).collect();
        Self { rows: data.len() / d, d, bits }
    }

    /// Decoded-`f32` gather with the same contract as
    /// `frozen::gather_rows`: `PAD` (negative) ids produce zero rows.
    ///
    /// # Panics
    /// Panics if `out` is smaller than `idx.len() · d` or an id is out of
    /// range.
    pub(crate) fn gather(&self, idx: &[i64], out: &mut [f32]) {
        let d = self.d;
        assert!(out.len() >= idx.len() * d, "F16Table::gather: out too small");
        for (r, &id) in idx.iter().enumerate() {
            let dst = &mut out[r * d..(r + 1) * d];
            if id == PAD || id < 0 {
                dst.fill(0.0);
                continue;
            }
            let row = id as usize;
            assert!(row < self.rows, "F16Table::gather: row {row} out of range ({})", self.rows);
            widen_f16(&self.bits[row * d..(row + 1) * d], dst);
        }
    }
}

/// One view's attention projections as `f16`-effective `f32` matrices
/// (`d × d`, row-major): `θ′ = decode(encode(θ))`. Compute and bounds both
/// read these, so the attention-weight quantization adds nothing to the
/// pruning envelope.
pub(crate) struct FastAttn {
    pub(crate) wq: Vec<f32>,
    pub(crate) wk: Vec<f32>,
    pub(crate) wv: Vec<f32>,
}

fn f16_effective(t: &Tensor) -> Vec<f32> {
    t.data().iter().map(|&x| f32_from_f16(f16_from_f32(x))).collect()
}

/// A symmetric per-row `i8` quantized matrix plus its dequantized `f32`
/// effective form. Row `i`'s scale is `max_j |w[i][j]| / 127`; the `i8`
/// codes are what a bandwidth-bound deployment would stream, while `eff`
/// (`q · scale`, a few KB per FFN layer at serving `d`) is what both the
/// fast forward pass and the bounds read — keeping the two in exact
/// agreement.
pub(crate) struct QuantMatrix {
    #[allow(dead_code)] // the storage form; compute reads `eff` (= q·scale).
    pub(crate) q: Vec<i8>,
    #[allow(dead_code)]
    pub(crate) scale: Vec<f32>,
    pub(crate) eff: Vec<f32>,
}

impl QuantMatrix {
    fn from_tensor(t: &Tensor, cols: usize) -> Self {
        let data = t.data();
        assert_eq!(data.len() % cols, 0, "QuantMatrix: len not a multiple of cols");
        let rows = data.len() / cols;
        let mut q = vec![0i8; data.len()];
        let mut scale = vec![0.0f32; rows];
        let mut eff = vec![0.0f32; data.len()];
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            if max_abs == 0.0 {
                continue; // all-zero row: scale 0, codes 0, eff 0.
            }
            let s = max_abs / 127.0;
            scale[r] = s;
            for (c, &x) in row.iter().enumerate() {
                let code = (x / s).round().clamp(-127.0, 127.0) as i8;
                q[r * cols + c] = code;
                eff[r * cols + c] = code as f32 * s;
            }
        }
        Self { q, scale, eff }
    }
}

/// The quantized parameter bundle behind [`ScorerPrecision::Fast`].
///
/// Built once from a frozen model by [`FrozenSeqFm::with_precision`]; the
/// linear-term vectors (`w_static`, `w_dynamic`, `w0`), layer norms, biases
/// and the output projection `p` stay full `f32` — they are tiny, and the
/// retrieval index's linear screen must be profile-independent.
pub struct FrozenParamsFast {
    pub(crate) emb_static: F16Table,
    pub(crate) emb_dynamic: F16Table,
    pub(crate) attn: [FastAttn; 3],
    pub(crate) ffn_w: Vec<Vec<QuantMatrix>>,
}

impl FrozenParamsFast {
    /// Quantizes a frozen model's parameters. Deterministic: the same
    /// snapshot always yields the same bits.
    pub(crate) fn build(m: &FrozenSeqFm) -> Self {
        let d = m.config().d;
        let attn = std::array::from_fn(|v| {
            let ids = &m.attn[v];
            FastAttn {
                wq: f16_effective(m.t(ids.wq)),
                wk: f16_effective(m.t(ids.wk)),
                wv: f16_effective(m.t(ids.wv)),
            }
        });
        let ffn_w = m
            .ffns
            .iter()
            .map(|layers| layers.iter().map(|l| QuantMatrix::from_tensor(m.t(l.w), d)).collect())
            .collect();
        Self {
            emb_static: F16Table::from_tensor(m.t(m.emb_static), d),
            emb_dynamic: F16Table::from_tensor(m.t(m.emb_dynamic), d),
            attn,
            ffn_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqfm_tensor::Shape;

    #[test]
    fn f16_table_gather_zeroes_pad_and_decodes_rows() {
        let t = Tensor::from_vec(Shape::d2(3, 4), (0..12).map(|i| 0.1 * i as f32 - 0.5).collect());
        let table = F16Table::from_tensor(&t, 4);
        let mut out = vec![7.0f32; 12];
        table.gather(&[2, PAD, 0], &mut out);
        assert_eq!(&out[4..8], &[0.0; 4], "PAD row must be zero");
        for (j, (&got, &want)) in out[..4].iter().zip(&t.data()[8..12]).enumerate() {
            let err = (got - want).abs();
            assert!(err <= want.abs() * 4.9e-4 + 1e-6, "row 2 col {j}: {got} vs {want}");
        }
    }

    #[test]
    fn quant_matrix_row_error_is_bounded_by_half_a_step() {
        let vals: Vec<f32> = (0..32).map(|i| ((i * 37 + 11) % 64) as f32 / 17.0 - 1.5).collect();
        let t = Tensor::from_vec(Shape::d2(4, 8), vals.clone());
        let qm = QuantMatrix::from_tensor(&t, 8);
        for r in 0..4 {
            let row = &vals[r * 8..(r + 1) * 8];
            let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let step = max_abs / 127.0;
            for (c, &rv) in row.iter().enumerate() {
                let err = (qm.eff[r * 8 + c] - rv).abs();
                assert!(err <= step * 0.5 + 1e-7, "({r},{c}): err {err} > step/2 {step}");
                // eff must be exactly code · scale.
                assert_eq!(qm.eff[r * 8 + c], qm.q[r * 8 + c] as f32 * qm.scale[r]);
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_exact_zero() {
        let t = Tensor::from_vec(Shape::d2(2, 4), vec![0.0; 8]);
        let qm = QuantMatrix::from_tensor(&t, 4);
        assert!(qm.eff.iter().all(|&x| x == 0.0));
        assert!(qm.scale.iter().all(|&s| s == 0.0));
    }
}
