//! The inference half of the train/serve API split.
//!
//! Training builds autograd tapes through [`SeqModel::forward`]; serving
//! goes through [`Scorer`], which is graph-free by contract: `score` takes
//! `&self` (so one model can be shared across threads), is deterministic
//! (dropout and every other stochastic regulariser off), and writes into a
//! caller-owned [`Scratch`] so the hot path performs no per-request
//! allocations once the workspace is warm.
//!
//! Two implementations ship here and in [`crate::frozen`]:
//!
//! * [`crate::FrozenSeqFm`] — SeqFM's forward pass rewritten as straight-line
//!   tensor kernel calls over an immutable parameter snapshot (the fast
//!   path);
//! * [`GraphScorer`] — an adapter that serves **any** [`SeqModel`] by
//!   building a tape per call (the compatibility path; every baseline in
//!   `seqfm-baselines` serves through it). The tape is *reused*: it lives
//!   in the [`Scratch`] and is [`reset`](seqfm_autograd::Graph::reset)
//!   between calls, so even the compatibility path stops allocating once
//!   its buffer pool is warm.

use crate::view::HistoryView;
use crate::SeqModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ModelEpoch, ParamStore};
use seqfm_data::Batch;
use seqfm_tensor::{AttnMask, Workspace};

/// Maps a batch of (static features, dynamic sequence) instances to one
/// score per instance without touching an autograd graph.
///
/// Implementations must be deterministic and must not mutate shared state —
/// all per-call workspace lives in the [`Scratch`]. The returned slice
/// borrows from `scratch` and holds `batch.len` scores.
pub trait Scorer {
    /// Model display name (used in serving logs and benches).
    fn name(&self) -> &str;

    /// The [`ModelEpoch`] of the parameters this scorer serves — the model
    /// identity epoch-aware caches key on, so that a view built under one
    /// published model revision is never replayed under another after a
    /// hot swap. Scorers without versioned parameters (stubs, graph
    /// adapters, offline freezes) live in a single-epoch world and keep the
    /// default [`ModelEpoch::ZERO`].
    fn model_epoch(&self) -> ModelEpoch {
        ModelEpoch::ZERO
    }

    /// Scores every instance of `batch`, returning `batch.len` scores that
    /// live inside `scratch`.
    fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32];

    /// Scores `batch` and **appends** the `batch.len` scores to `out`
    /// instead of borrowing them out of `scratch`.
    ///
    /// This is the out-buffer hook batch-coalescing servers build on: one
    /// caller-owned accumulator collects the scores of several groups
    /// scored back to back, each [`Scorer::score`] call reusing the same
    /// `scratch`, with no per-group allocation once both are warm. The
    /// default implementation delegates to [`Scorer::score`] and copies;
    /// implementations whose kernels can write straight into `out` may
    /// override it.
    fn score_into(&self, batch: &Batch, scratch: &mut Scratch, out: &mut Vec<f32>) {
        let scores = self.score(batch, scratch);
        out.extend_from_slice(scores);
    }

    /// Whether this scorer can split its forward pass into cacheable
    /// history-side work ([`HistoryView`]) and per-candidate work.
    ///
    /// `false` (the default) tells stateful serving layers not to bother
    /// building or caching views for this scorer — [`GraphScorer`] and other
    /// compatibility paths recompute everything per call.
    fn supports_history_view(&self) -> bool {
        false
    }

    /// Precomputes the history-side intermediates for one left-padded
    /// dynamic index row (`dyn_row`, as a candidate-expansion batch would
    /// carry in every row), for later reuse via
    /// [`Scorer::score_with_view_into`].
    ///
    /// Returns `None` when the scorer does not support views (the default);
    /// a `Some` view scores **bit-identically** to recomputing from
    /// `dyn_row` — that is the contract caching layers rely on.
    fn build_history_view(&self, dyn_row: &[i64], scratch: &mut Scratch) -> Option<HistoryView> {
        let _ = (dyn_row, scratch);
        None
    }

    /// Scores a candidate-expansion batch whose every row carries the
    /// dynamic block `view` was built from, reusing the view's cached
    /// history-side work, and **appends** the `batch.len` scores to `out`.
    ///
    /// The default implementation ignores the view and recomputes through
    /// [`Scorer::score_into`] — still correct (view-based scoring is
    /// bit-identical by contract), just without the saving. Implementations
    /// overriding this must reject a view whose
    /// [`dyn_idx`](HistoryView::dyn_idx) does not match the batch rather
    /// than serve stale history.
    fn score_with_view_into(
        &self,
        batch: &Batch,
        view: &HistoryView,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        let _ = view;
        self.score_into(batch, scratch, out);
    }
}

/// Cached attention masks for the dynamic and cross views, keyed by the
/// batch geometry they were built for.
pub(crate) struct MaskCache {
    pub(crate) ns: usize,
    pub(crate) nd: usize,
    pub(crate) causal: AttnMask,
    pub(crate) cross: AttnMask,
}

impl MaskCache {
    /// The cached masks for a `(ns, nd)` geometry, rebuilding on change.
    pub(crate) fn for_geometry(cache: &mut Option<MaskCache>, ns: usize, nd: usize) -> &MaskCache {
        let stale = !matches!(&cache, Some(m) if m.ns == ns && m.nd == nd);
        if stale {
            *cache = Some(MaskCache {
                ns,
                nd,
                causal: AttnMask::causal(nd),
                cross: AttnMask::cross(ns, nd),
            });
        }
        cache.as_ref().expect("just installed")
    }
}

/// Reusable per-thread scoring workspace.
///
/// One `Scratch` belongs to exactly one serving thread. It owns a
/// [`Workspace`] arena that hands the frozen forward pass its view buffers
/// (embeddings, Q/K/V, attention scores, pooling and FFN temporaries) as
/// RAII scopes sized exactly per call, plus the reused autograd tape of the
/// [`GraphScorer`] compatibility path. Every buffer grows to the high-water
/// mark of the batches it has seen, after which [`Scorer::score`] calls
/// allocate nothing — a property pinned down by a counting-allocator test
/// (`tests/score_zero_alloc.rs`).
pub struct Scratch {
    /// RNG handed to `SeqModel::forward` by [`GraphScorer`]. Inference
    /// forwards are deterministic by contract, so its state never influences
    /// scores.
    pub(crate) rng: StdRng,
    /// Final scores, `[batch.len]` — the buffer the returned slice borrows.
    pub(crate) out: Vec<f32>,
    /// Arena for the frozen forward's kernel temporaries.
    pub(crate) ws: Workspace,
    /// Reused tape for [`GraphScorer`]; reset between calls.
    pub(crate) graph: Graph,
    /// Per-sample padding lengths (masked-pooling extension).
    pub(crate) pad_counts: Vec<usize>,
    pub(crate) masks: Option<MaskCache>,
}

impl Scratch {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Scratch {
            rng: StdRng::seed_from_u64(0),
            out: Vec::new(),
            ws: Workspace::new(),
            graph: Graph::new(),
            pad_counts: Vec::new(),
            masks: None,
        }
    }

    /// Copies `scores` into the workspace's score buffer and hands back the
    /// borrow — the ergonomic way for a custom [`Scorer`] (a stub, a proxy,
    /// a remote-call adapter) to satisfy the "returned scores live inside
    /// `scratch`" contract without access to the private buffers.
    pub fn publish_scores(&mut self, scores: &[f32]) -> &[f32] {
        self.out.clear();
        self.out.extend_from_slice(scores);
        &self.out
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Serves any [`SeqModel`] through the [`Scorer`] interface by building a
/// tape per call (`training = false`) on the scratch's reused graph.
///
/// This is the compatibility adapter: it keeps every baseline servable while
/// paying the full tape cost per request, and it is the reference the
/// graph-free [`crate::FrozenSeqFm`] is benchmarked against.
pub struct GraphScorer<M: SeqModel> {
    model: M,
    ps: ParamStore,
}

impl<M: SeqModel> GraphScorer<M> {
    /// Wraps a model and its trained parameters.
    pub fn new(model: M, ps: ParamStore) -> Self {
        GraphScorer { model, ps }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The wrapped parameters.
    pub fn params(&self) -> &ParamStore {
        &self.ps
    }

    /// Unwraps into `(model, params)` — e.g. to resume training.
    pub fn into_parts(self) -> (M, ParamStore) {
        (self.model, self.ps)
    }
}

impl<M: SeqModel> Scorer for GraphScorer<M> {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
        scratch.graph.reset();
        let y = self.model.forward(&mut scratch.graph, &self.ps, batch, false, &mut scratch.rng);
        let data = scratch.graph.value(y).data();
        scratch.out.clear();
        scratch.out.extend_from_slice(data);
        &scratch.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeqFm, SeqFmConfig};
    use seqfm_data::{build_instance, FeatureLayout};

    fn setup() -> (GraphScorer<SeqFm>, Batch) {
        let layout = FeatureLayout { n_users: 5, n_items: 9 };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let batch = Batch::try_from_instances(&[
            build_instance(&layout, 0, 2, &[1, 3], 6, 1.0),
            build_instance(&layout, 4, 8, &[0, 5, 7, 2], 6, 0.0),
        ])
        .expect("valid batch");
        (GraphScorer::new(model, ps), batch)
    }

    #[test]
    fn graph_scorer_matches_forward_exactly() {
        let (scorer, batch) = setup();
        let mut scratch = Scratch::new();
        let served = scorer.score(&batch, &mut scratch).to_vec();
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(99);
        let y = scorer.model().forward(&mut g, scorer.params(), &batch, false, &mut rng);
        assert_eq!(served, g.value(y).data());
        assert_eq!(scorer.name(), "SeqFM");
    }

    #[test]
    fn scratch_is_reusable_across_batches() {
        let (scorer, batch) = setup();
        let mut scratch = Scratch::new();
        let first = scorer.score(&batch, &mut scratch).to_vec();
        let again = scorer.score(&batch, &mut scratch).to_vec();
        assert_eq!(first, again, "scoring must be deterministic");
    }

    #[test]
    fn score_into_appends_and_matches_score() {
        let (scorer, batch) = setup();
        let mut scratch = Scratch::new();
        let direct = scorer.score(&batch, &mut scratch).to_vec();
        // Accumulate two back-to-back scoring rounds into one buffer — the
        // coalescing-server usage pattern.
        let mut acc = vec![-1.0f32];
        scorer.score_into(&batch, &mut scratch, &mut acc);
        scorer.score_into(&batch, &mut scratch, &mut acc);
        assert_eq!(acc.len(), 1 + 2 * batch.len);
        assert_eq!(acc[0], -1.0, "existing contents must be preserved");
        assert_eq!(&acc[1..1 + batch.len], &direct[..]);
        assert_eq!(&acc[1 + batch.len..], &direct[..]);
    }

    /// A stub scorer built on `publish_scores` — the supported way for
    /// out-of-crate `Scorer` impls to return fabricated scores.
    struct Fixed(Vec<f32>);

    impl Scorer for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }

        fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
            scratch.publish_scores(&self.0[..batch.len])
        }
    }

    #[test]
    fn publish_scores_supports_external_scorer_impls() {
        let (_, batch) = setup();
        let stub = Fixed(vec![0.5, -2.0]);
        let mut scratch = Scratch::new();
        assert_eq!(stub.score(&batch, &mut scratch), &[0.5, -2.0]);
        let mut acc = Vec::new();
        stub.score_into(&batch, &mut scratch, &mut acc);
        assert_eq!(acc, vec![0.5, -2.0]);
    }

    #[test]
    fn mask_cache_rebuilds_only_on_geometry_change() {
        let mut cache = None;
        let m1 = MaskCache::for_geometry(&mut cache, 2, 4);
        assert_eq!((m1.causal.rows(), m1.cross.rows()), (4, 6));
        // Same geometry: cache hit (no observable rebuild, same dims).
        let m2 = MaskCache::for_geometry(&mut cache, 2, 4);
        assert_eq!(m2.nd, 4);
        // New geometry: rebuilt.
        let m3 = MaskCache::for_geometry(&mut cache, 3, 5);
        assert_eq!((m3.causal.rows(), m3.cross.rows()), (5, 8));
    }

    #[test]
    fn graph_scorer_reused_tape_is_deterministic_and_allocation_free() {
        let (scorer, batch) = setup();
        let mut scratch = Scratch::new();
        let want = scorer.score(&batch, &mut scratch).to_vec();
        // Warm the tape's buffer pool, then assert flat heap traffic.
        for _ in 0..3 {
            scorer.score(&batch, &mut scratch);
        }
        let warm = scratch.graph.workspace().heap_events();
        for _ in 0..10 {
            assert_eq!(scorer.score(&batch, &mut scratch), &want[..]);
        }
        assert_eq!(
            scratch.graph.workspace().heap_events(),
            warm,
            "warm graph-scorer calls must not grow the tape pool"
        );
    }
}
