//! Graph-free SeqFM inference: [`FrozenSeqFm`].
//!
//! A `FrozenSeqFm` is built from a trained `(SeqFm, ParamStore)` pair — or
//! directly from a checkpoint blob — by snapshotting every parameter into an
//! immutable, `Arc`-shareable [`FrozenParams`]. Its forward pass replays the
//! exact floating-point operations of the graph forward pass
//! ([`SeqModel::forward`](crate::SeqModel::forward) on [`SeqFm`] — same kernels, same
//! order) as straight-line code: no tape nodes, no parameter clones, no RNG,
//! and no per-call allocations once the caller's [`Scratch`] is warm. Logits
//! therefore match the graph path **bit for bit**, which the tests assert.

use crate::config::SeqFmConfig;
use crate::precision::{FrozenParamsFast, ScorerPrecision};
use crate::scorer::{MaskCache, Scorer, Scratch};
use crate::view::HistoryView;
use crate::SeqFm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{FrozenId, FrozenParams, ModelEpoch, ParamStore};
use seqfm_data::{Batch, FeatureLayout, PAD};
use seqfm_nn::checkpoint::{self, CheckpointError};
use seqfm_tensor::{
    attention_cross_fast_into, attention_cross_shared_fast_into, attention_into,
    attention_pair_fast_into, matmul_nn_fast_into, matmul_nn_into, AttnMask, Tensor,
};
use std::sync::Arc;

/// Must match `seqfm_nn::layers::LayerNorm::new` — the paper's "small bias
/// term added in case σ = 0" (Eq. 16).
pub(crate) const LN_EPS: f32 = 1e-5;

pub(crate) struct AttnIds {
    pub(crate) wq: FrozenId,
    pub(crate) wk: FrozenId,
    pub(crate) wv: FrozenId,
}

pub(crate) struct FfnLayerIds {
    pub(crate) ln_scale: FrozenId,
    pub(crate) ln_bias: FrozenId,
    pub(crate) w: FrozenId,
    pub(crate) b: FrozenId,
}

/// An immutable, thread-shareable SeqFM ready for serving.
///
/// `FrozenSeqFm` is `Send + Sync`: clone the [`Arc`] behind it (or the whole
/// struct — parameter ids are `Copy` and the snapshot is shared) and hand
/// one [`Scratch`] to each serving thread.
pub struct FrozenSeqFm {
    cfg: SeqFmConfig,
    params: Arc<FrozenParams>,
    pub(crate) emb_static: FrozenId,
    pub(crate) emb_dynamic: FrozenId,
    pub(crate) w_static: FrozenId,
    w_dynamic: FrozenId,
    pub(crate) w0: FrozenId,
    pub(crate) attn: [AttnIds; 3],
    pub(crate) ffns: Vec<Vec<FfnLayerIds>>,
    pub(crate) p: FrozenId,
    precision: ScorerPrecision,
    fast: Option<Arc<FrozenParamsFast>>,
}

impl FrozenSeqFm {
    /// Freezes a live `(model, params)` pair into an inference-only model.
    pub fn freeze(model: &SeqFm, ps: &ParamStore) -> Self {
        Self::from_params(FrozenParams::shared(ps), *model.config())
    }

    /// Builds a frozen model over an existing parameter snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot is missing any `seqfm.*` parameter the config
    /// implies (wrong depth, wrong FFN sharing, or a non-SeqFM snapshot).
    pub fn from_params(params: Arc<FrozenParams>, cfg: SeqFmConfig) -> Self {
        cfg.validate();
        let r = |name: &str| {
            params
                .index_of(name)
                .unwrap_or_else(|| panic!("frozen SeqFM: parameter `{name}` missing from snapshot"))
        };
        let attn_ids = |prefix: &str| AttnIds {
            wq: r(&format!("{prefix}.wq.w")),
            wk: r(&format!("{prefix}.wk.w")),
            wv: r(&format!("{prefix}.wv.w")),
        };
        let n_ffns = if cfg.ablation.shared_ffn { 1 } else { cfg.ablation.active_views() };
        let ffns = (0..n_ffns)
            .map(|i| {
                (0..cfg.layers)
                    .map(|j| FfnLayerIds {
                        ln_scale: r(&format!("seqfm.ffn{i}.{j}.ln.scale")),
                        ln_bias: r(&format!("seqfm.ffn{i}.{j}.ln.bias")),
                        w: r(&format!("seqfm.ffn{i}.{j}.lin.w")),
                        b: r(&format!("seqfm.ffn{i}.{j}.lin.b")),
                    })
                    .collect()
            })
            .collect();
        FrozenSeqFm {
            emb_static: r("seqfm.emb_static.table"),
            emb_dynamic: r("seqfm.emb_dynamic.table"),
            w_static: r("seqfm.w_static.table"),
            w_dynamic: r("seqfm.w_dynamic.table"),
            w0: r("seqfm.w0"),
            attn: [
                attn_ids("seqfm.attn_static"),
                attn_ids("seqfm.attn_dynamic"),
                attn_ids("seqfm.attn_cross"),
            ],
            ffns,
            p: r("seqfm.p"),
            cfg,
            params,
            precision: ScorerPrecision::Exact,
            fast: None,
        }
    }

    /// Switches the serving profile, quantizing the parameters on first use
    /// of [`ScorerPrecision::Fast`] (see [`crate::precision`] for the error
    /// budget and guarantees). The quantized bundle is kept when toggling
    /// back to `Exact`, so flipping profiles is cheap after the first build.
    #[must_use]
    pub fn with_precision(mut self, precision: ScorerPrecision) -> Self {
        self.precision = precision;
        if precision == ScorerPrecision::Fast && self.fast.is_none() {
            self.fast = Some(Arc::new(FrozenParamsFast::build(&self)));
        }
        self
    }

    /// The active serving profile.
    pub fn precision(&self) -> ScorerPrecision {
        self.precision
    }

    /// The quantized bundle, when the fast profile is active.
    fn fast_active(&self) -> Option<&FrozenParamsFast> {
        match self.precision {
            ScorerPrecision::Fast => self.fast.as_deref(),
            ScorerPrecision::Exact => None,
        }
    }

    pub(crate) fn is_fast(&self) -> bool {
        self.fast_active().is_some()
    }

    /// Profile-aware static-embedding gather (`f16`-decoded under `Fast`).
    pub(crate) fn gather_static(&self, idx: &[i64], d: usize, out: &mut [f32]) {
        match self.fast_active() {
            Some(fp) => fp.emb_static.gather(idx, out),
            None => gather_rows(self.t(self.emb_static), idx, d, out),
        }
    }

    /// Profile-aware dynamic-embedding gather.
    pub(crate) fn gather_dynamic(&self, idx: &[i64], d: usize, out: &mut [f32]) {
        match self.fast_active() {
            Some(fp) => fp.emb_dynamic.gather(idx, out),
            None => gather_rows(self.t(self.emb_dynamic), idx, d, out),
        }
    }

    /// View `view`'s attention weight matrix (`which`: 0 = Q, 1 = K, 2 = V)
    /// in the active profile — the exact tensor, or the `f16`-effective copy
    /// the fast forward pass *and* the retrieval bounds both read.
    pub(crate) fn attn_w(&self, view: usize, which: usize) -> &[f32] {
        match self.fast_active() {
            Some(fp) => {
                let fa = &fp.attn[view];
                match which {
                    0 => &fa.wq,
                    1 => &fa.wk,
                    _ => &fa.wv,
                }
            }
            None => {
                let ids = &self.attn[view];
                self.t(match which {
                    0 => ids.wq,
                    1 => ids.wk,
                    _ => ids.wv,
                })
                .data()
            }
        }
    }

    /// Profile-aware attention projection `out[m,d] = e[m,d] · W[d,d]`
    /// (the flatten–matmul of `Linear::forward_3d`; projections carry no
    /// bias). Per-row arithmetic is batch-independent in both profiles, so
    /// a row's projection is the same bits whether it is computed here for a
    /// forward pass or for a bounds envelope.
    pub(crate) fn project_view(
        &self,
        e: &[f32],
        view: usize,
        which: usize,
        m: usize,
        out: &mut [f32],
    ) {
        let d = self.cfg.d;
        let w = self.attn_w(view, which);
        let out = &mut out[..m * d];
        out.fill(0.0);
        if self.is_fast() {
            matmul_nn_fast_into(e, w, out, m, d, d);
        } else {
            matmul_nn_into(e, w, out, m, d, d);
        }
    }

    /// FFN `which`'s layer-`li` weight matrix in the active profile (the
    /// `i8`-effective copy under `Fast`, shared with the bounds).
    pub(crate) fn ffn_w_data(&self, which: usize, li: usize) -> &[f32] {
        match self.fast_active() {
            Some(fp) => &fp.ffn_w[which][li].eff,
            None => self.t(self.ffns[which][li].w).data(),
        }
    }

    /// Restores a frozen model straight from a checkpoint blob (see
    /// [`seqfm_nn::checkpoint`]). `layout` and `cfg` must describe the model
    /// that wrote the checkpoint.
    ///
    /// # Errors
    /// Any [`CheckpointError`] of the decode (bad magic/version, truncation,
    /// unknown/missing parameters, shape mismatch).
    pub fn from_checkpoint(
        blob: &[u8],
        layout: &FeatureLayout,
        cfg: SeqFmConfig,
    ) -> Result<Self, CheckpointError> {
        let mut ps = ParamStore::new();
        // Seed is irrelevant: every initialised value is overwritten by the
        // checkpoint (load fails on any missing parameter).
        let mut rng = StdRng::seed_from_u64(0);
        let model = SeqFm::new(&mut ps, &mut rng, layout, cfg);
        checkpoint::load(&mut ps, blob)?;
        Ok(Self::freeze(&model, &ps))
    }

    /// Restores a frozen model from a checkpoint file (see
    /// [`checkpoint::load_file`]).
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on read failure, plus any decode error.
    pub fn from_checkpoint_file(
        path: impl AsRef<std::path::Path>,
        layout: &FeatureLayout,
        cfg: SeqFmConfig,
    ) -> Result<Self, CheckpointError> {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = SeqFm::new(&mut ps, &mut rng, layout, cfg);
        checkpoint::load_file(&mut ps, path)?;
        Ok(Self::freeze(&model, &ps))
    }

    /// Model configuration.
    pub fn config(&self) -> &SeqFmConfig {
        &self.cfg
    }

    /// The shared parameter snapshot.
    pub fn params(&self) -> &Arc<FrozenParams> {
        &self.params
    }

    /// The [`ModelEpoch`] the underlying snapshot was stamped with —
    /// [`ModelEpoch::ZERO`] for plain offline freezes.
    pub fn epoch(&self) -> ModelEpoch {
        self.params.epoch()
    }

    pub(crate) fn t(&self, id: FrozenId) -> &Tensor {
        self.params.value(id)
    }

    /// One view of the forward pass: project Q/K/V, attend, pool, run the
    /// (shared or per-view) FFN, and write the result into this view's
    /// column block of `hagg`.
    ///
    /// `cross_ns`: `Some(ns)` on the cross view, whose mask admits only
    /// static↔dynamic pairs — the fast profile then takes the
    /// block-structured [`attention_cross_fast_into`] (bit-identical to the
    /// dense masked fast path; see its docs) instead of scoring the dense
    /// `n × n` matrix the mask mostly discards.
    #[allow(clippy::too_many_arguments)]
    fn run_view(
        &self,
        view: usize,
        ffn_idx: usize,
        e: &[f32],
        b: usize,
        n: usize,
        d: usize,
        scale: f32,
        mask: Option<&AttnMask>,
        cross_ns: Option<usize>,
        pads: Option<(&[usize], usize)>,
        view_col: usize,
        views: usize,
        bufs: &mut ViewBufs<'_>,
    ) {
        self.project_view(e, view, 0, b * n, bufs.q);
        self.project_view(e, view, 1, b * n, bufs.k);
        self.project_view(e, view, 2, b * n, bufs.v);
        self.finish_view(ffn_idx, b, n, d, scale, mask, cross_ns, pads, view_col, views, bufs);
    }

    /// Attention → pooling → FFN → `hagg` column write, on already-projected
    /// Q/K/V in `bufs` (`cross_ns` as on [`Self::run_view`]).
    #[allow(clippy::too_many_arguments)]
    fn finish_view(
        &self,
        ffn_idx: usize,
        b: usize,
        n: usize,
        d: usize,
        scale: f32,
        mask: Option<&AttnMask>,
        cross_ns: Option<usize>,
        pads: Option<(&[usize], usize)>,
        view_col: usize,
        views: usize,
        bufs: &mut ViewBufs<'_>,
    ) {
        let fast = self.is_fast();
        // The fast profile picks the cheapest *bit-stable* kernel per
        // geometry, not "the fast kernel everywhere": the cross view's
        // block structure admits only `2·ns·nd` of `n²` score entries (the
        // structured kernel wins big), the static view's maskless n = 2
        // slices get the fused unrolled pair kernel, and the remaining
        // shapes (causal dynamic rows) are fastest on the exact fused
        // path — at `x86-64-v3` it already auto-vectorizes, and the
        // approximate softmax's per-row overhead costs more than libm exp
        // saves there (measured: the dense fast path *loses* to exact).
        // Every choice is bit-identical across SIMD arms, so the fast
        // profile's cross-arm determinism contract is unaffected.
        match cross_ns {
            Some(ns) if fast => {
                attention_cross_fast_into(
                    bufs.q,
                    bufs.k,
                    bufs.v,
                    scale,
                    b,
                    ns,
                    n - ns,
                    d,
                    bufs.scores,
                    bufs.ctx,
                );
            }
            // The static view's (user, candidate) pair: the fused unrolled
            // pair kernel skips the per-slice bmm dispatch entirely.
            None if fast && mask.is_none() && n == 2 => {
                attention_pair_fast_into(bufs.q, bufs.k, bufs.v, scale, b, d, bufs.ctx);
            }
            _ => {
                attention_into(bufs.q, bufs.k, bufs.v, mask, scale, b, n, d, bufs.scores, bufs.ctx);
            }
        }
        self.pool_ffn_write(ffn_idx, b, n, d, pads, view_col, views, bufs);
    }

    /// The post-attention tail of a view: pooling → FFN → `hagg` column
    /// write, on an already-computed context in `bufs.ctx`. Split out of
    /// [`Self::finish_view`] so fast-profile paths that run a specialized
    /// attention entry point (the splice-free shared-history kernel) share
    /// the identical tail.
    #[allow(clippy::too_many_arguments)]
    fn pool_ffn_write(
        &self,
        ffn_idx: usize,
        b: usize,
        n: usize,
        d: usize,
        pads: Option<(&[usize], usize)>,
        view_col: usize,
        views: usize,
        bufs: &mut ViewBufs<'_>,
    ) {
        let ab = self.cfg.ablation;
        pool_into(bufs.ctx, b, n, d, ab.masked_pooling, pads, bufs.pool);
        let which = if ab.shared_ffn { 0 } else { ffn_idx };
        for (li, layer) in self.ffns[which].iter().enumerate() {
            ffn_layer(
                bufs.pool,
                bufs.normed,
                bufs.lin,
                self.t(layer.ln_scale).data(),
                self.t(layer.ln_bias).data(),
                self.ffn_w_data(which, li),
                self.t(layer.b).data(),
                b,
                d,
                ab.residual,
                ab.layer_norm,
                self.is_fast(),
            );
        }
        let stride = views * d;
        for bi in 0..b {
            bufs.hagg[bi * stride + view_col..bi * stride + view_col + d]
                .copy_from_slice(&bufs.pool[bi * d..(bi + 1) * d]);
        }
    }

    /// Projects the `1 + b` unique static rows of a constant-user
    /// candidate-expansion batch (`e_u` = `[user_row, cand_0, …,
    /// cand_{b−1}]`) with view `view`'s Q/K/V weights and interleaves the
    /// results into the leading `[b, 2, d]` blocks of `dsts`
    /// (Q, K, V order), using `pu` (≥ `(1 + b)·d`) as projection scratch.
    ///
    /// Candidate-expansion batches repeat the user feature in static
    /// column 0 of every row; projection arithmetic is row-local, so
    /// projecting that row once and broadcasting its output is the same
    /// bits per row as projecting it `b` times inside the batched call
    /// (the batch-independence invariant the tiled-kernel tests pin) at
    /// roughly half the projection arithmetic.
    fn project_static_unique(
        &self,
        e_u: &[f32],
        view: usize,
        b: usize,
        d: usize,
        pu: &mut [f32],
        dsts: [&mut [f32]; 3],
    ) {
        for (wi, dst) in dsts.into_iter().enumerate() {
            self.project_view(e_u, view, wi, 1 + b, pu);
            for bi in 0..b {
                let base = bi * 2 * d;
                dst[base..base + d].copy_from_slice(&pu[..d]);
                dst[base + d..base + 2 * d].copy_from_slice(&pu[(1 + bi) * d..(2 + bi) * d]);
            }
        }
    }
}

/// Mutable workspace slices threaded through [`FrozenSeqFm::run_view`].
struct ViewBufs<'a> {
    q: &'a mut [f32],
    k: &'a mut [f32],
    v: &'a mut [f32],
    scores: &'a mut [f32],
    ctx: &'a mut [f32],
    pool: &'a mut [f32],
    normed: &'a mut [f32],
    lin: &'a mut [f32],
    hagg: &'a mut [f32],
}

impl FrozenSeqFm {
    /// Precomputes the history-side half of the forward pass for one
    /// left-padded dynamic index row: the dynamic view's pooled output, the
    /// cross view's history-row Q/K/V projections, the lin˙ term, and the
    /// padding length — everything a candidate-expansion batch over this
    /// history would recompute identically on every request.
    ///
    /// The cached values are produced by the very same kernel calls the
    /// plain forward runs, so scoring through
    /// [`FrozenSeqFm::score_with_view`] is **bit-identical** to
    /// [`Scorer::score`] on an inline batch carrying the same row.
    ///
    /// # Panics
    /// Panics if an index in `dyn_row` is out of the embedding table's
    /// range (callers validate ids against the feature layout first).
    pub fn history_view(&self, dyn_row: &[i64], scratch: &mut Scratch) -> HistoryView {
        let nd = dyn_row.len();
        let d = self.cfg.d;
        let ab = self.cfg.ablation;
        let scale = 1.0 / (d as f32).sqrt();
        let Scratch { ws, masks, .. } = scratch;

        let pad = dyn_row.iter().take_while(|&&i| i == PAD).count();
        let mut view = HistoryView { dyn_idx: dyn_row.to_vec(), d, pad, ..HistoryView::default() };

        // lin˙ (Eq. 4), in `sum_dyn`'s exact accumulation order.
        let wd = self.t(self.w_dynamic).data();
        for &i in dyn_row {
            if i >= 0 {
                view.lin_d += wd[i as usize];
            }
        }
        if !(ab.dynamic_view || ab.cross_view) || nd == 0 {
            return view;
        }

        let mut e_d = ws.take(nd * d);
        self.gather_dynamic(dyn_row, d, &mut e_d);

        if ab.cross_view {
            // The cross view's history rows are projected row-locally, so
            // the per-request shared path can splice these under each
            // row's per-candidate static projections (same projection call
            // as the non-cached path, in the model's active profile).
            let dsts = [&mut view.hist_q, &mut view.hist_k, &mut view.hist_v];
            for (wi, dst) in dsts.into_iter().enumerate() {
                dst.resize(nd * d, 0.0);
                self.project_view(&e_d[..nd * d], 2, wi, nd, dst);
            }
        }
        if ab.dynamic_view {
            // The whole dynamic view collapses to one pooled `d`-vector per
            // history. Serving expansion batches carry ns == 2 static
            // features; the causal mask itself depends only on nd.
            let causal = &MaskCache::for_geometry(masks, 2, nd).causal;
            let mut q = ws.take(nd * d);
            let mut k = ws.take(nd * d);
            let mut v = ws.take(nd * d);
            let mut scores = ws.take(nd * nd);
            let mut ctx = ws.take(nd * d);
            let mut pool = ws.take(d);
            let mut normed = ws.take(d);
            let mut lin = ws.take(d);
            let mut hagg = ws.take(d);
            let mut bufs = ViewBufs {
                q: &mut q,
                k: &mut k,
                v: &mut v,
                scores: &mut scores,
                ctx: &mut ctx,
                pool: &mut pool,
                normed: &mut normed,
                lin: &mut lin,
                hagg: &mut hagg,
            };
            // The dynamic view's FFN slot mirrors the forward pass's
            // ffn_idx bookkeeping: 1 when the static view precedes it.
            let ffn_idx = usize::from(ab.static_view);
            self.run_view(
                1,
                ffn_idx,
                &e_d[..nd * d],
                1,
                nd,
                d,
                scale,
                Some(causal),
                None,
                Some((&[pad], 0)),
                0,
                1,
                &mut bufs,
            );
            view.dyn_pooled = bufs.pool[..d].to_vec();
        }
        view
    }

    /// Scores a candidate-expansion batch against a cached
    /// [`HistoryView`], skipping every history-side computation the view
    /// already holds. Bit-identical to [`Scorer::score`] on the same batch.
    ///
    /// # Panics
    /// Panics if `view` was not built for exactly this batch's dynamic
    /// block (stale or mismatched views must fail loudly, not serve wrong
    /// scores).
    pub fn score_with_view<'s>(
        &self,
        batch: &Batch,
        view: &HistoryView,
        scratch: &'s mut Scratch,
    ) -> &'s [f32] {
        self.forward_split(batch, scratch, Some(view));
        &scratch.out[..batch.len]
    }

    /// Scores one cache-sized block of the item catalog — candidates
    /// `items` for `user` — against a cached [`HistoryView`], appending one
    /// logit per item to `out` (in `items` order).
    ///
    /// The candidate-expansion batch (rows `[user_feature, item_feature]`
    /// over the view's dynamic block) is rebuilt in place inside `batch`, so
    /// a catalog scan reuses one batch's buffers across every block. Logits
    /// are bit-identical to scoring the same rows in any other batch
    /// composition: per-row arithmetic in the forward pass is independent of
    /// the surrounding batch (the invariant `tests/` pins for the kernels).
    /// `items` need not be contiguous or sorted — retrieval indexes reorder
    /// the catalog so blocks share similar precomputed partial scores.
    ///
    /// # Panics
    /// Panics if `user` or an item in `items` is outside `layout`, or if
    /// `view` was not built at this model's width.
    #[allow(clippy::too_many_arguments)]
    pub fn score_catalog_into(
        &self,
        layout: &FeatureLayout,
        user: u32,
        items: &[u32],
        view: &HistoryView,
        batch: &mut Batch,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        assert!((user as usize) < layout.n_users, "user {user} outside layout");
        let len = items.len();
        let nd = view.nd();
        let uf = layout.user_feature(user);
        batch.len = len;
        batch.n_static = 2;
        batch.n_dynamic = nd;
        batch.static_idx.clear();
        for &item in items {
            assert!((item as usize) < layout.n_items, "item {item} outside layout");
            batch.static_idx.push(uf);
            batch.static_idx.push(layout.item_feature(item));
        }
        batch.dyn_idx.clear();
        for _ in 0..len {
            batch.dyn_idx.extend_from_slice(view.dyn_idx());
        }
        batch.targets.clear();
        batch.targets.resize(len, 0.0);
        if len > 0 {
            self.forward_split(batch, scratch, Some(view));
            out.extend_from_slice(&scratch.out[..len]);
        }
    }

    /// The forward pass, with the history-side work either computed in
    /// place (`cached == None` — the classic path, including the
    /// shared-history fast path) or spliced in from a cached
    /// [`HistoryView`].
    fn forward_split(&self, batch: &Batch, scratch: &mut Scratch, cached: Option<&HistoryView>) {
        let (b, ns, nd) = (batch.len, batch.n_static, batch.n_dynamic);
        let d = self.cfg.d;
        let ab = self.cfg.ablation;
        let views = ab.active_views();
        let scale = 1.0 / (d as f32).sqrt();
        let nmax = ns + nd;

        if let Some(view) = cached {
            // A view is tied to one exact dynamic row; serving stale
            // history silently would be the worst possible failure mode.
            assert_eq!(view.d, d, "history view built at width {} but model is {d}", view.d);
            assert_eq!(view.nd(), nd, "history view covers nd={} but batch has {nd}", view.nd());
            assert!(
                nd == 0 || batch.dyn_idx.chunks_exact(nd).all(|row| row == view.dyn_idx()),
                "history view does not match the batch's dynamic block"
            );
        }

        // Disjoint field borrows: the arena hands out every kernel
        // temporary below; `out` stays a plain buffer because the caller's
        // returned slice borrows it past the arena scopes' lifetime.
        let Scratch { out, ws, pad_counts, masks, .. } = scratch;
        if ab.dynamic_view || ab.cross_view {
            MaskCache::for_geometry(masks, ns, nd);
        }
        if out.len() < b {
            out.resize(b, 0.0);
        }
        if pad_counts.len() < b {
            pad_counts.resize(b, 0);
        }

        // Serving fast path: a candidate-expansion batch repeats one user
        // history across every row, so everything derived from the dynamic
        // block alone — its embeddings, the whole dynamic view, the cross
        // view's history-row projections, the lin˙ term — is computed once
        // and reused. Per-row arithmetic is untouched, so logits stay
        // bit-identical to the per-row path (and to the graph). A cached
        // view is that same once-per-batch work memoised across requests,
        // so it rides the identical branch.
        let shared_hist = (cached.is_some() && nd > 0)
            || (b > 1
                && nd > 0
                && batch.dyn_idx.chunks_exact(nd).skip(1).all(|row| row == &batch.dyn_idx[..nd]));
        // Rows of the dynamic block actually materialised; a cached view
        // skips materialising the dynamic embeddings entirely.
        let db = if shared_hist { 1 } else { b };
        let need_e_d = cached.is_none();

        // Candidate-expansion batches repeat the user feature in static
        // column 0 of every row; the fast profile then projects the `1 + b`
        // unique static rows instead of all `2·b` and broadcasts the shared
        // row's projection — bit-identical per row (see
        // [`Self::project_static_unique`]).
        let fastp = self.is_fast();
        let uniq_static = fastp
            && ns == 2
            && b > 1
            && batch.static_idx.chunks_exact(2).skip(1).all(|r| r[0] == batch.static_idx[0]);

        // Workspace scopes, sized exactly for this batch (zero-filled on
        // take; zero heap traffic once the arena has seen the shape).
        // The splice-free fast shared-history path never materializes
        // interleaved `[b, ns + nd, d]` Q/K/V or dense `n²` score scratch,
        // so its scopes shrink to what the structured kernels actually
        // read — the arena zero-fills every take, making right-sizing pure
        // memset bandwidth saved on every request (~1 MB at serving
        // geometry).
        let (qkv_len, scores_len) = if fastp && shared_hist {
            (
                (b * ns * d).max(db * nd * d),
                (b * ns * ns).max(db * nd * nd).max(if ab.cross_view { b * ns * nd } else { 0 }),
            )
        } else {
            (b * nmax * d, b * nmax * nmax)
        };
        let mut e_s = ws.take(b * ns * d);
        let mut e_d = ws.take(if need_e_d { db * nd * d } else { 0 });
        let cross_stacked = ab.cross_view && !shared_hist;
        let mut e_x = ws.take(if cross_stacked { b * nmax * d } else { 0 });
        let mut q = ws.take(qkv_len);
        let mut k = ws.take(qkv_len);
        let mut v = ws.take(qkv_len);
        let hist_proj = ab.cross_view && shared_hist && need_e_d;
        let mut qd = ws.take(if hist_proj { nd * d } else { 0 });
        // The splice-free fast kernel needs all three history projections
        // alive at once; the exact splice path reuses `qd` per matrix.
        let mut kd = ws.take(if hist_proj && fastp { nd * d } else { 0 });
        let mut vd = ws.take(if hist_proj && fastp { nd * d } else { 0 });
        let mut e_u = ws.take(if uniq_static { (1 + b) * d } else { 0 });
        let mut pu = ws.take(if uniq_static { (1 + b) * d } else { 0 });
        let mut scores = ws.take(scores_len);
        let mut ctx = ws.take(b * nmax * d);
        let mut pool = ws.take(b * d);
        let mut normed = ws.take(b * d);
        let mut lin = ws.take(b * d);
        let mut hagg = ws.take(b * views * d);

        // Embedding layer (Eq. 5): PAD rows embed to exact zeros.
        self.gather_static(&batch.static_idx, d, &mut e_s);
        if need_e_d {
            self.gather_dynamic(&batch.dyn_idx[..db * nd], d, &mut e_d);
        }
        if uniq_static {
            // Unique static rows: the shared user row once, then each
            // candidate's row (static column 1 of every slice).
            e_u[..d].copy_from_slice(&e_s[..d]);
            for bi in 0..b {
                e_u[(1 + bi) * d..(2 + bi) * d]
                    .copy_from_slice(&e_s[(bi * 2 + 1) * d..(bi + 1) * 2 * d]);
            }
        }

        // Per-sample padding lengths (masked-pooling extension).
        if let Some(view) = cached {
            pad_counts[..b].fill(view.pad);
        } else {
            for (bi, slot) in pad_counts.iter_mut().enumerate().take(db) {
                *slot =
                    batch.dyn_idx[bi * nd..(bi + 1) * nd].iter().take_while(|&&i| i == PAD).count();
            }
            if shared_hist {
                let pad0 = pad_counts[0];
                pad_counts[1..b].fill(pad0);
            }
        }

        // Multi-view attention → pooling → shared FFN, each view writing its
        // block of the aggregated representation (Eq. 17) directly.
        let mut bufs = ViewBufs {
            q: &mut q,
            k: &mut k,
            v: &mut v,
            scores: &mut scores,
            ctx: &mut ctx,
            pool: &mut pool,
            normed: &mut normed,
            lin: &mut lin,
            hagg: &mut hagg,
        };
        let mut ffn_idx = 0usize;
        let mut view_col = 0usize;
        if ab.static_view {
            if uniq_static {
                // Unique-row projections straight into the leading
                // `[b, 2, d]` Q/K/V blocks, then the same attention → FFN
                // finish `run_view` would perform.
                self.project_static_unique(
                    &e_u[..(1 + b) * d],
                    0,
                    b,
                    d,
                    &mut pu,
                    [&mut *bufs.q, &mut *bufs.k, &mut *bufs.v],
                );
                self.finish_view(
                    ffn_idx, b, ns, d, scale, None, None, None, view_col, views, &mut bufs,
                );
            } else {
                self.run_view(
                    0,
                    ffn_idx,
                    &e_s[..b * ns * d],
                    b,
                    ns,
                    d,
                    scale,
                    None,
                    None,
                    None,
                    view_col,
                    views,
                    &mut bufs,
                );
            }
            ffn_idx += 1;
            view_col += d;
        }
        if ab.dynamic_view {
            if let Some(view) = cached.filter(|_| shared_hist) {
                // The cached pooled vector *is* this history's dynamic-view
                // output (produced by the same `run_view` call): splice it
                // into row 0's column block and broadcast, exactly like the
                // computed shared path below.
                bufs.hagg[view_col..view_col + d].copy_from_slice(&view.dyn_pooled);
                broadcast_hagg_block(bufs.hagg, b, views * d, view_col, d);
            } else {
                let causal = &masks.as_ref().expect("mask cache installed").causal;
                // With a shared history the dynamic view is identical for
                // every row: run it once (db == 1) and broadcast the pooled
                // result.
                self.run_view(
                    1,
                    ffn_idx,
                    &e_d[..db * nd * d],
                    db,
                    nd,
                    d,
                    scale,
                    Some(causal),
                    None,
                    Some((&pad_counts[..db], 0)),
                    view_col,
                    views,
                    &mut bufs,
                );
                if shared_hist {
                    broadcast_hagg_block(bufs.hagg, b, views * d, view_col, d);
                }
            }
            ffn_idx += 1;
            view_col += d;
        }
        if ab.cross_view {
            let nx = ns + nd;
            let cross = &masks.as_ref().expect("mask cache installed").cross;
            if shared_hist {
                // The history rows' Q/K/V projections are row-local, so the
                // shared history projects once per weight matrix; a cached
                // view already holds the three projections (built by the
                // identical projection call).
                let cached_hist =
                    cached.map(|v| [v.hist_q.as_slice(), v.hist_k.as_slice(), v.hist_v.as_slice()]);
                if fastp {
                    // Splice-free fast path: the candidates' static-row
                    // projections land in the leading `[b, ns, d]` blocks of
                    // Q/K/V, the shared history's three `[nd, d]` projections
                    // stay in their own small blocks, and the structured
                    // shared-history kernel reads both in place —
                    // bit-identical to splicing the history under every slice
                    // and running the interleaved kernel (pinned in the
                    // tensor crate), minus `3·b·nd·d` floats of pure copying
                    // per call.
                    if uniq_static {
                        self.project_static_unique(
                            &e_u[..(1 + b) * d],
                            2,
                            b,
                            d,
                            &mut pu,
                            [&mut *bufs.q, &mut *bufs.k, &mut *bufs.v],
                        );
                    } else {
                        self.project_view(&e_s[..b * ns * d], 2, 0, b * ns, bufs.q);
                        self.project_view(&e_s[..b * ns * d], 2, 1, b * ns, bufs.k);
                        self.project_view(&e_s[..b * ns * d], 2, 2, b * ns, bufs.v);
                    }
                    let [qh, kh, vh] = match cached_hist {
                        Some(h) => h,
                        None => {
                            self.project_view(&e_d[..nd * d], 2, 0, nd, &mut qd);
                            self.project_view(&e_d[..nd * d], 2, 1, nd, &mut kd);
                            self.project_view(&e_d[..nd * d], 2, 2, nd, &mut vd);
                            [&qd[..nd * d], &kd[..nd * d], &vd[..nd * d]]
                        }
                    };
                    attention_cross_shared_fast_into(
                        bufs.q,
                        bufs.k,
                        bufs.v,
                        qh,
                        kh,
                        vh,
                        scale,
                        b,
                        ns,
                        nd,
                        d,
                        bufs.scores,
                        bufs.ctx,
                    );
                    self.pool_ffn_write(
                        ffn_idx,
                        b,
                        nx,
                        d,
                        Some((pad_counts.as_slice(), ns)),
                        view_col,
                        views,
                        &mut bufs,
                    );
                } else {
                    // Exact profile: splice the history under each row's
                    // per-candidate static projections; attention runs on
                    // the interleaved layout (the cross mask mixes static
                    // and dynamic positions). All candidates' static rows
                    // project in one batched call per weight matrix
                    // (row-local arithmetic: one m-row matmul or b tiny
                    // ones produce the same bits per row — the invariant
                    // the tiled-kernel tests pin), then splice into each
                    // candidate's block; b tiny matmul dispatches would pay
                    // panel packing and workspace setup per candidate.
                    let mut ps_rows = ws.take(b * ns * d);
                    let dsts = [&mut *bufs.q, &mut *bufs.k, &mut *bufs.v];
                    for (wi, dst) in dsts.into_iter().enumerate() {
                        let hist: &[f32] = match &cached_hist {
                            Some(h) => h[wi],
                            None => {
                                self.project_view(&e_d[..nd * d], 2, wi, nd, &mut qd);
                                &qd
                            }
                        };
                        self.project_view(&e_s[..b * ns * d], 2, wi, b * ns, &mut ps_rows);
                        for bi in 0..b {
                            let base = bi * nx * d;
                            dst[base..base + ns * d]
                                .copy_from_slice(&ps_rows[bi * ns * d..(bi + 1) * ns * d]);
                            dst[base + ns * d..base + nx * d].copy_from_slice(&hist[..nd * d]);
                        }
                    }
                    self.finish_view(
                        ffn_idx,
                        b,
                        nx,
                        d,
                        scale,
                        Some(cross),
                        Some(ns),
                        Some((pad_counts.as_slice(), ns)),
                        view_col,
                        views,
                        &mut bufs,
                    );
                }
            } else {
                // Cross-view stack [E°; E˙] per sample (Eq. 12).
                for bi in 0..b {
                    e_x[bi * nx * d..bi * nx * d + ns * d]
                        .copy_from_slice(&e_s[bi * ns * d..(bi + 1) * ns * d]);
                    e_x[bi * nx * d + ns * d..(bi + 1) * nx * d]
                        .copy_from_slice(&e_d[bi * nd * d..(bi + 1) * nd * d]);
                }
                self.run_view(
                    2,
                    ffn_idx,
                    &e_x[..b * nx * d],
                    b,
                    nx,
                    d,
                    scale,
                    Some(cross),
                    Some(ns),
                    Some((pad_counts.as_slice(), ns)),
                    view_col,
                    views,
                    &mut bufs,
                );
            }
        }
        let hagg = bufs.hagg;

        // Output projection f = hagg·p (Eq. 18).
        let fout = &mut out[..b];
        fout.fill(0.0);
        matmul_nn_into(&hagg[..b * views * d], self.t(self.p).data(), fout, b, views * d, 1);

        // Linear terms (Eq. 4) and global bias, in the tape's association
        // order: (f + (lin° + lin˙)) + w₀.
        let ws = self.t(self.w_static).data();
        let wd = self.t(self.w_dynamic).data();
        let w0 = self.t(self.w0).data()[0];
        let sum_dyn = |bi: usize| {
            let mut lin_d = 0.0f32;
            for &i in &batch.dyn_idx[bi * nd..(bi + 1) * nd] {
                if i >= 0 {
                    lin_d += wd[i as usize];
                }
            }
            lin_d
        };
        // A cached view carries lin˙ accumulated in `sum_dyn`'s exact order,
        // so the cached and computed values are the same bits.
        let shared_lin_d = match cached {
            Some(view) => Some(view.lin_d),
            None => shared_hist.then(|| sum_dyn(0)),
        };
        for (bi, f) in fout.iter_mut().enumerate() {
            let mut lin_s = 0.0f32;
            for &i in &batch.static_idx[bi * ns..(bi + 1) * ns] {
                if i >= 0 {
                    lin_s += ws[i as usize];
                }
            }
            let lin_d = shared_lin_d.unwrap_or_else(|| sum_dyn(bi));
            *f = (*f + (lin_s + lin_d)) + w0;
        }
    }
}

impl Scorer for FrozenSeqFm {
    fn name(&self) -> &str {
        match self.precision {
            ScorerPrecision::Exact => "SeqFM[frozen]",
            ScorerPrecision::Fast => "SeqFM[frozen:fast]",
        }
    }

    fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
        self.forward_split(batch, scratch, None);
        &scratch.out[..batch.len]
    }

    fn model_epoch(&self) -> ModelEpoch {
        self.params.epoch()
    }

    fn supports_history_view(&self) -> bool {
        true
    }

    fn build_history_view(&self, dyn_row: &[i64], scratch: &mut Scratch) -> Option<HistoryView> {
        Some(self.history_view(dyn_row, scratch))
    }

    fn score_with_view_into(
        &self,
        batch: &Batch,
        view: &HistoryView,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        self.forward_split(batch, scratch, Some(view));
        out.extend_from_slice(&scratch.out[..batch.len]);
    }
}

/// Copies row 0's `[col, col + w)` block of the `[b, stride]` matrix `hagg`
/// into every other row (shared-history broadcast of a view's output).
fn broadcast_hagg_block(hagg: &mut [f32], b: usize, stride: usize, col: usize, w: usize) {
    let (first, rest) = hagg[..b * stride].split_at_mut(stride);
    let src = &first[col..col + w];
    for row in rest.chunks_exact_mut(stride) {
        row[col..col + w].copy_from_slice(src);
    }
}

/// Embedding gather mirroring `Graph::gather`: zero rows for [`PAD`].
///
/// # Panics
/// Panics if an index is out of table range.
pub(crate) fn gather_rows(table: &Tensor, idx: &[i64], d: usize, out: &mut [f32]) {
    let rows = table.shape().dim(0);
    debug_assert_eq!(table.shape().dim(1), d);
    let out = &mut out[..idx.len() * d];
    out.fill(0.0);
    for (slot, &i) in idx.iter().enumerate() {
        if i < 0 {
            continue;
        }
        let i = i as usize;
        assert!(i < rows, "gather index {i} out of range ({rows} rows)");
        out[slot * d..(slot + 1) * d].copy_from_slice(&table.data()[i * d..(i + 1) * d]);
    }
}

/// Intra-view pooling (Eq. 14), mirroring `SeqFm::pool` exactly: plain mean
/// over rows, or — with the masked-pooling extension — an indicator-weighted
/// sum rescaled by the true sequence length.
fn pool_into(
    h: &[f32],
    b: usize,
    n: usize,
    d: usize,
    masked: bool,
    pads: Option<(&[usize], usize)>,
    out: &mut [f32],
) {
    let h = &h[..b * n * d];
    let out = &mut out[..b * d];
    match (masked, pads) {
        (true, Some((pads, n_fixed))) => {
            for bi in 0..b {
                let pad = pads[bi];
                let inv = 1.0 / ((n - pad) as f32).max(1.0);
                let o = &mut out[bi * d..(bi + 1) * d];
                o.fill(0.0);
                for r in 0..n {
                    let ind = if r >= n_fixed && r < n_fixed + pad { 0.0 } else { 1.0 };
                    let row = &h[(bi * n + r) * d..(bi * n + r + 1) * d];
                    for (ov, &hv) in o.iter_mut().zip(row) {
                        *ov += hv * ind;
                    }
                }
                for ov in o.iter_mut() {
                    *ov *= inv;
                }
            }
        }
        _ => {
            let nf = n as f32;
            for bi in 0..b {
                let o = &mut out[bi * d..(bi + 1) * d];
                o.fill(0.0);
                for r in 0..n {
                    let row = &h[(bi * n + r) * d..(bi * n + r + 1) * d];
                    for (ov, &hv) in o.iter_mut().zip(row) {
                        *ov += hv;
                    }
                }
                for ov in o.iter_mut() {
                    *ov /= nf;
                }
            }
        }
    }
}

/// One residual FFN layer (Eq. 15/16) on `h [b, d]` in place, mirroring
/// `ResidualFfnLayer::forward` with dropout off (inference).
#[allow(clippy::too_many_arguments)]
fn ffn_layer(
    h: &mut [f32],
    normed: &mut [f32],
    lin: &mut [f32],
    ln_scale: &[f32],
    ln_bias: &[f32],
    w: &[f32],
    bias: &[f32],
    b: usize,
    d: usize,
    residual: bool,
    layer_norm: bool,
    fast: bool,
) {
    let h = &mut h[..b * d];
    let normed = &mut normed[..b * d];
    let lin = &mut lin[..b * d];
    // LayerNorm (ablatable), mirroring `Graph::layer_norm`.
    let src: &[f32] = if layer_norm {
        for (row, orow) in h.chunks_exact(d).zip(normed.chunks_exact_mut(d)) {
            let mu = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
            let rs = 1.0 / (var + LN_EPS).sqrt();
            for ((&xi, o), (&sc, &bi)) in
                row.iter().zip(orow.iter_mut()).zip(ln_scale.iter().zip(ln_bias))
            {
                *o = (xi - mu) * rs * sc + bi;
            }
        }
        normed
    } else {
        h
    };
    // Linear + bias + ReLU.
    lin.fill(0.0);
    if fast {
        matmul_nn_fast_into(src, w, lin, b, d, d);
    } else {
        matmul_nn_into(src, w, lin, b, d, d);
    }
    for row in lin.chunks_exact_mut(d) {
        for (o, &bv) in row.iter_mut().zip(bias) {
            *o += bv;
        }
    }
    for o in lin.iter_mut() {
        *o = o.max(0.0);
    }
    // Residual connection (ablatable).
    if residual {
        for (hv, &lv) in h.iter_mut().zip(lin.iter()) {
            *hv += lv;
        }
    } else {
        h.copy_from_slice(lin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use crate::SeqModel;
    use seqfm_autograd::Graph;
    use seqfm_data::build_instance;

    fn layout() -> FeatureLayout {
        FeatureLayout { n_users: 6, n_items: 10 }
    }

    fn batch(max_seq: usize) -> Batch {
        let l = layout();
        Batch::try_from_instances(&[
            build_instance(&l, 0, 3, &[1, 2, 5], max_seq, 1.0),
            build_instance(&l, 2, 7, &[4], max_seq, 0.0),
            build_instance(&l, 5, 9, &[0, 1, 2, 3, 4, 5, 6, 7], max_seq, 1.0),
        ])
        .expect("valid batch")
    }

    fn graph_logits(model: &SeqFm, ps: &ParamStore, b: &Batch) -> Vec<f32> {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(77);
        let y = model.forward(&mut g, ps, b, false, &mut rng);
        g.value(y).data().to_vec()
    }

    fn all_variants() -> Vec<(&'static str, Ablation)> {
        let mut v = Ablation::table5_variants();
        v.extend(Ablation::extension_variants());
        v
    }

    #[test]
    fn frozen_matches_graph_bit_for_bit_across_all_variants() {
        for (name, ab) in all_variants() {
            let cfg =
                SeqFmConfig { d: 8, max_seq: 6, dropout: 0.0, ablation: ab, ..Default::default() };
            let mut ps = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(3);
            let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
            let b = batch(6);
            let expect = graph_logits(&model, &ps, &b);
            let frozen = FrozenSeqFm::freeze(&model, &ps);
            let mut scratch = Scratch::new();
            let got = frozen.score(&b, &mut scratch);
            assert_eq!(got.len(), b.len);
            for (i, (g, f)) in expect.iter().zip(got).enumerate() {
                assert_eq!(g.to_bits(), f.to_bits(), "{name}: logit {i} diverges ({g} vs {f})");
            }
        }
    }

    #[test]
    fn shared_history_fast_path_is_bit_identical_too() {
        // Candidate-expansion shape: every row repeats one user history and
        // only the candidate differs — the branch that reuses the dynamic
        // view must still match the graph exactly, for every variant.
        let l = layout();
        let hist = [1u32, 2, 5, 8];
        let insts: Vec<_> =
            (0..7).map(|c| build_instance(&l, 3, c as u32, &hist, 6, 0.0)).collect();
        let shared = Batch::try_from_instances(&insts).expect("valid batch");
        for (name, ab) in all_variants() {
            let cfg =
                SeqFmConfig { d: 8, max_seq: 6, dropout: 0.0, ablation: ab, ..Default::default() };
            let mut ps = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(17);
            let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
            let expect = graph_logits(&model, &ps, &shared);
            let frozen = FrozenSeqFm::freeze(&model, &ps);
            let mut scratch = Scratch::new();
            let got = frozen.score(&shared, &mut scratch);
            for (i, (g, f)) in expect.iter().zip(got).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    f.to_bits(),
                    "{name}: shared-history logit {i} diverges ({g} vs {f})"
                );
            }
        }
    }

    #[test]
    fn scratch_survives_geometry_changes() {
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
        let frozen = FrozenSeqFm::freeze(&model, &ps);
        let mut scratch = Scratch::new();
        // Big batch first, then a single-row batch, then big again: buffer
        // reuse must not leak stale values between calls.
        let big = batch(6);
        let first = frozen.score(&big, &mut scratch).to_vec();
        let l = layout();
        let one = Batch::try_from_instances(&[build_instance(&l, 1, 4, &[2, 8], 6, 1.0)])
            .expect("valid batch");
        let single = frozen.score(&one, &mut scratch).to_vec();
        assert_eq!(single.len(), 1);
        let again = frozen.score(&big, &mut scratch).to_vec();
        assert_eq!(first, again, "stale scratch state corrupted a batch");
        let expect = graph_logits(&model, &ps, &one);
        assert_eq!(expect[0].to_bits(), single[0].to_bits());
    }

    #[test]
    fn frozen_model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenSeqFm>();
        assert_send_sync::<Arc<FrozenSeqFm>>();
    }

    #[test]
    #[should_panic(expected = "missing from snapshot")]
    fn from_params_rejects_foreign_snapshot() {
        let ps = ParamStore::new();
        let _ = FrozenSeqFm::from_params(Arc::new(ps.freeze()), SeqFmConfig::default());
    }
}
