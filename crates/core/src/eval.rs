//! Evaluation protocols (paper §V-C).
//!
//! * Ranking: each user's held-out test item is mixed with `J` sampled
//!   negatives; HR@K / NDCG@K over the induced ranking.
//! * Classification: one sampled negative per positive test instance; AUC
//!   and RMSE over the predicted probabilities.
//! * Regression: direct MAE / RRSE on the held-out ratings.

use crate::SeqModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_data::{build_instance, Batch, FeatureLayout, Instance, LeaveOneOut, NegativeSampler};
use seqfm_metrics::{auc, rmse_binary, RankingAccumulator};
use seqfm_tensor::ew::sigmoid_scalar;

/// Which held-out events to evaluate on: the validation events (second-to-
/// last; used for model selection during training) or the test events (last;
/// reported numbers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalSplit {
    /// Second-to-last event per user.
    Validation,
    /// Last event per user.
    Test,
}

impl EvalSplit {
    fn target(self, split: &LeaveOneOut, u: usize) -> seqfm_data::Event {
        match self {
            EvalSplit::Validation => split.valid[u],
            EvalSplit::Test => split.test[u],
        }
    }

    fn history(self, split: &LeaveOneOut, u: usize) -> Vec<u32> {
        match self {
            EvalSplit::Validation => split.history_for_valid(u),
            EvalSplit::Test => split.history_for_test(u),
        }
    }
}

/// Scores a list of instances with `model` (inference mode), batching
/// internally.
pub fn score_instances(
    model: &dyn SeqModel,
    ps: &ParamStore,
    instances: &[Instance],
    batch_size: usize,
    rng: &mut StdRng,
) -> Vec<f32> {
    let mut scores = Vec::with_capacity(instances.len());
    for chunk in instances.chunks(batch_size.max(1)) {
        let batch = Batch::try_from_instances(chunk).expect("valid batch");
        let mut g = Graph::new();
        let y = model.forward(&mut g, ps, &batch, false, rng);
        scores.extend_from_slice(g.value(y).data());
    }
    scores
}

/// Ranking evaluation config.
#[derive(Clone, Copy, Debug)]
pub struct RankingEvalConfig {
    /// Number of sampled negatives `J` (paper: 1000).
    pub negatives: usize,
    /// Maximum dynamic sequence length.
    pub max_seq: usize,
    /// Scoring batch size.
    pub batch_size: usize,
    /// Seed for the candidate sampler.
    pub seed: u64,
}

impl Default for RankingEvalConfig {
    fn default() -> Self {
        RankingEvalConfig { negatives: 200, max_seq: 20, batch_size: 256, seed: 7 }
    }
}

/// Leave-one-out ranking evaluation on the test events: HR@{5,10,20} and
/// NDCG@{5,10,20}.
pub fn evaluate_ranking(
    model: &dyn SeqModel,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &RankingEvalConfig,
) -> RankingAccumulator {
    evaluate_ranking_on(model, ps, split, layout, sampler, cfg, EvalSplit::Test)
}

/// Ranking evaluation on a chosen split (validation during training, test
/// for reporting).
pub fn evaluate_ranking_on(
    model: &dyn SeqModel,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &RankingEvalConfig,
    on: EvalSplit,
) -> RankingAccumulator {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut acc = RankingAccumulator::new(&[5, 10, 20]);
    for u in 0..split.test.len() {
        let hist = on.history(split, u);
        let positive = on.target(split, u).item;
        let negs = sampler.sample_distinct(u, cfg.negatives, &mut rng);
        let mut insts = Vec::with_capacity(negs.len() + 1);
        insts.push(build_instance(layout, u as u32, positive, &hist, cfg.max_seq, 1.0));
        for &n in &negs {
            insts.push(build_instance(layout, u as u32, n, &hist, cfg.max_seq, 0.0));
        }
        let scores = score_instances(model, ps, &insts, cfg.batch_size, &mut rng);
        acc.record_scores(scores[0], &scores[1..]);
    }
    acc
}

/// Classification evaluation result.
#[derive(Clone, Copy, Debug)]
pub struct CtrEval {
    /// Area under the ROC curve.
    pub auc: f64,
    /// RMSE between predicted probabilities and 0/1 labels.
    pub rmse: f64,
}

/// CTR evaluation on the test events: the held-out click plus one sampled
/// non-click per user (paper §V-C), probabilities via the sigmoid output
/// layer (Eq. 23).
pub fn evaluate_ctr(
    model: &dyn SeqModel,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    max_seq: usize,
    seed: u64,
) -> CtrEval {
    evaluate_ctr_on(model, ps, split, layout, sampler, max_seq, seed, EvalSplit::Test)
}

/// CTR evaluation on a chosen split.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_ctr_on(
    model: &dyn SeqModel,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    max_seq: usize,
    seed: u64,
    on: EvalSplit,
) -> CtrEval {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut insts = Vec::with_capacity(split.test.len() * 2);
    let mut labels = Vec::with_capacity(split.test.len() * 2);
    for u in 0..split.test.len() {
        let hist = on.history(split, u);
        insts.push(build_instance(layout, u as u32, on.target(split, u).item, &hist, max_seq, 1.0));
        labels.push(true);
        let neg = sampler.sample(u, &mut rng);
        insts.push(build_instance(layout, u as u32, neg, &hist, max_seq, 0.0));
        labels.push(false);
    }
    let logits = score_instances(model, ps, &insts, 256, &mut rng);
    let probs: Vec<f32> = logits.iter().map(|&z| sigmoid_scalar(z)).collect();
    CtrEval { auc: auc(&probs, &labels), rmse: rmse_binary(&probs, &labels) }
}

/// Regression evaluation result.
#[derive(Clone, Copy, Debug)]
pub struct RatingEval {
    /// Mean absolute error.
    pub mae: f64,
    /// Root relative squared error (Eq. 28).
    pub rrse: f64,
}

/// Rating evaluation: predict each user's held-out rating; MAE / RRSE.
/// `offset` is the target centring constant from
/// [`crate::TrainReport::target_offset`]; predictions are un-centred and
/// clamped to the valid rating range `[1, 5]` (standard for rating
/// predictors).
pub fn evaluate_rating(
    model: &dyn SeqModel,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    max_seq: usize,
    offset: f32,
) -> RatingEval {
    evaluate_rating_on(model, ps, split, layout, max_seq, offset, EvalSplit::Test)
}

/// Rating evaluation on a chosen split.
pub fn evaluate_rating_on(
    model: &dyn SeqModel,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    max_seq: usize,
    offset: f32,
    on: EvalSplit,
) -> RatingEval {
    let mut rng = StdRng::seed_from_u64(0);
    let insts: Vec<Instance> = (0..split.test.len())
        .map(|u| {
            let hist = on.history(split, u);
            let e = on.target(split, u);
            build_instance(layout, u as u32, e.item, &hist, max_seq, e.rating)
        })
        .collect();
    let raw = score_instances(model, ps, &insts, 256, &mut rng);
    let preds: Vec<f32> = raw.iter().map(|&p| (p + offset).clamp(1.0, 5.0)).collect();
    let truth: Vec<f32> = (0..split.test.len()).map(|u| on.target(split, u).rating).collect();
    RatingEval {
        mae: seqfm_metrics::mae(&preds, &truth),
        rrse: seqfm_metrics::rrse(&preds, &truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqModel;
    use rand::rngs::StdRng;
    use seqfm_autograd::Var;
    use seqfm_data::{Event, Scale};
    use seqfm_tensor::Tensor;

    /// Mock model scoring `hi` when the candidate equals the per-user answer
    /// and `lo` otherwise — lets the protocols be verified exactly.
    struct Oracle {
        answers: Vec<u32>,
        layout: FeatureLayout,
        hi: f32,
        lo: f32,
    }

    impl SeqModel for Oracle {
        fn name(&self) -> &str {
            "Oracle"
        }

        fn forward(
            &self,
            g: &mut Graph,
            _ps: &ParamStore,
            batch: &seqfm_data::Batch,
            _training: bool,
            _rng: &mut StdRng,
        ) -> Var {
            let scores: Vec<f32> = (0..batch.len)
                .map(|i| {
                    let user = batch.static_idx[i * batch.n_static] as usize;
                    let cand = batch.candidate_item(&self.layout, i);
                    if self.answers[user] == cand {
                        self.hi
                    } else {
                        self.lo
                    }
                })
                .collect();
            g.input(Tensor::vector(scores))
        }
    }

    fn setup() -> (seqfm_data::Dataset, LeaveOneOut, FeatureLayout, NegativeSampler) {
        let mut cfg = seqfm_data::ranking::RankingConfig::gowalla(Scale::Small);
        cfg.n_users = 12;
        cfg.n_items = 40;
        cfg.n_clusters = 4;
        cfg.min_len = 5;
        cfg.max_len = 8;
        let ds = seqfm_data::ranking::generate(&cfg).unwrap();
        let split = LeaveOneOut::split(&ds);
        let layout = FeatureLayout::of(&ds);
        let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
        let sampler = NegativeSampler::new(ds.n_items, seen);
        (ds, split, layout, sampler)
    }

    #[test]
    fn perfect_oracle_achieves_hr_and_ndcg_one() {
        let (_, split, layout, sampler) = setup();
        let answers: Vec<u32> = split.test.iter().map(|e| e.item).collect();
        let oracle = Oracle { answers, layout, hi: 10.0, lo: 0.0 };
        let ps = ParamStore::new();
        let cfg = RankingEvalConfig { negatives: 20, max_seq: 6, ..Default::default() };
        let acc = evaluate_ranking(&oracle, &ps, &split, &layout, &sampler, &cfg);
        assert_eq!(acc.hr(5), 1.0);
        assert_eq!(acc.ndcg(5), 1.0);
    }

    #[test]
    fn anti_oracle_scores_zero() {
        let (_, split, layout, sampler) = setup();
        let answers: Vec<u32> = split.test.iter().map(|e| e.item).collect();
        // positive gets the LOW score → always ranked last
        let oracle = Oracle { answers, layout, hi: -10.0, lo: 0.0 };
        let ps = ParamStore::new();
        let cfg = RankingEvalConfig { negatives: 20, max_seq: 6, ..Default::default() };
        let acc = evaluate_ranking(&oracle, &ps, &split, &layout, &sampler, &cfg);
        assert_eq!(acc.hr(20), 0.0);
    }

    #[test]
    fn ctr_oracle_reaches_auc_one() {
        let (_, split, layout, sampler) = setup();
        let answers: Vec<u32> = split.test.iter().map(|e| e.item).collect();
        let oracle = Oracle { answers, layout, hi: 5.0, lo: -5.0 };
        let ps = ParamStore::new();
        let ev = evaluate_ctr(&oracle, &ps, &split, &layout, &sampler, 6, 1);
        assert_eq!(ev.auc, 1.0);
        assert!(ev.rmse < 0.05, "confident correct probabilities, rmse {}", ev.rmse);
    }

    #[test]
    fn validation_and_test_splits_use_different_targets() {
        let (_, split, layout, sampler) = setup();
        // oracle keyed on VALIDATION items: perfect on valid, poor on test
        let answers: Vec<u32> = split.valid.iter().map(|e| e.item).collect();
        let oracle = Oracle { answers, layout, hi: 10.0, lo: 0.0 };
        let ps = ParamStore::new();
        let cfg = RankingEvalConfig { negatives: 20, max_seq: 6, ..Default::default() };
        let on_valid = evaluate_ranking_on(
            &oracle,
            &ps,
            &split,
            &layout,
            &sampler,
            &cfg,
            EvalSplit::Validation,
        );
        let on_test =
            evaluate_ranking_on(&oracle, &ps, &split, &layout, &sampler, &cfg, EvalSplit::Test);
        assert_eq!(on_valid.hr(5), 1.0);
        assert!(on_test.hr(5) < 1.0, "test split must differ from validation");
    }

    #[test]
    fn rating_offset_is_applied_and_clamped() {
        let split = LeaveOneOut {
            train: vec![
                vec![Event { item: 0, time: 1, rating: 4.0 }],
                vec![Event { item: 0, time: 1, rating: 2.0 }],
            ],
            valid: vec![
                Event { item: 0, time: 2, rating: 4.0 },
                Event { item: 0, time: 2, rating: 2.0 },
            ],
            // deliberately out-of-range truth to exercise clamping; two
            // distinct values so RRSE's variance is non-zero
            test: vec![
                Event { item: 1, time: 3, rating: 9.0 },
                Event { item: 1, time: 3, rating: 1.0 },
            ],
        };
        // model always outputs 0 → prediction = offset, clamped to [1,5]
        struct Zero;
        impl SeqModel for Zero {
            fn name(&self) -> &str {
                "Zero"
            }
            fn forward(
                &self,
                g: &mut Graph,
                _ps: &ParamStore,
                batch: &seqfm_data::Batch,
                _training: bool,
                _rng: &mut StdRng,
            ) -> Var {
                g.input(Tensor::vector(vec![0.0; batch.len]))
            }
        }
        let layout = FeatureLayout { n_users: 2, n_items: 2 };
        let ps = ParamStore::new();
        let ev = evaluate_rating(&Zero, &ps, &split, &layout, 4, 7.5);
        // offset 7.5 clamps to 5.0 for both; |5-9| = 4 and |5-1| = 4 → MAE 4
        assert!((ev.mae - 4.0).abs() < 1e-6);
    }
}
