//! Task-specific training loops (paper §IV).
//!
//! All three tasks share the same skeleton: enumerate training positions
//! (user, prefix-length) pairs from the leave-one-out training split, build
//! mini-batches of [`seqfm_data::Instance`]s, run a forward pass of any
//! [`SeqModel`], apply the task loss, and step Adam (§IV-D).
//!
//! * ranking — BPR pairwise loss over (positive, sampled-negative) pairs
//!   (Eq. 21);
//! * CTR — log loss with `ctr_negatives` sampled negatives per positive
//!   (Eq. 24, §IV-D uses 5);
//! * rating — squared error (Eq. 26), no negative sampling.

use crate::SeqModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_data::{build_instance, Batch, FeatureLayout, Instance, LeaveOneOut, NegativeSampler};
use seqfm_nn::{Adam, Optimizer};
use seqfm_tensor::Tensor;
use std::time::Instant;

/// Trainer configuration shared by all tasks.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training positions.
    pub epochs: usize,
    /// Mini-batch size (paper: 512 on GPU; smaller default for CPU).
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-4 at full scale; larger at small
    /// scale — see EXPERIMENTS.md).
    pub lr: f32,
    /// Maximum dynamic sequence length n˙ fed to the models.
    pub max_seq: usize,
    /// Negatives per positive for CTR training (paper: 5).
    pub ctr_negatives: usize,
    /// RNG seed controlling shuffling, negative sampling, and dropout.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 128,
            lr: 3e-3,
            max_seq: 20,
            ctr_negatives: 5,
            seed: 42,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds spent in the loop (Fig. 4 measurements).
    pub seconds: f64,
    /// Optimizer steps taken.
    pub steps: usize,
    /// Constant subtracted from regression targets during training (the
    /// training-set mean rating); add it back to raw predictions. Zero for
    /// ranking/CTR.
    pub target_offset: f32,
}

impl TrainReport {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// All (user, prefix_len) training positions with non-empty history.
fn training_positions(split: &LeaveOneOut) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (u, seq) in split.train.iter().enumerate() {
        for i in 1..seq.len() {
            out.push((u, i));
        }
    }
    out
}

fn history(split: &LeaveOneOut, u: usize, prefix: usize) -> Vec<u32> {
    split.train[u][..prefix].iter().map(|e| e.item).collect()
}

/// Trains with the BPR pairwise ranking loss (Eq. 21):
/// `L = −Σ log σ(ŷ⁺ − ŷ⁻)`, negatives drawn uniformly from items the user
/// never interacted with.
pub fn train_ranking(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
) -> TrainReport {
    train_ranking_with_hook(model, ps, split, layout, sampler, cfg, |_, _| false)
}

/// [`train_ranking`] with an `after_epoch(epoch, ps) -> stop` hook — the
/// harness uses it for validation-based early selection and early stopping
/// (evaluate on the held-out validation events, checkpoint the best epoch,
/// stop when the metric plateaus, restore the best afterwards). Returning
/// `true` ends training after the current epoch.
pub fn train_ranking_with_hook(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
    mut after_epoch: impl FnMut(usize, &mut ParamStore) -> bool,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut positions = training_positions(split);
    let start = Instant::now();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut steps = 0usize;

    for _ in 0..cfg.epochs {
        positions.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in positions.chunks(cfg.batch_size) {
            let mut pos = Vec::with_capacity(chunk.len());
            let mut neg = Vec::with_capacity(chunk.len());
            for &(u, i) in chunk {
                let hist = history(split, u, i);
                let target = split.train[u][i].item;
                let negative = sampler.sample(u, &mut rng);
                pos.push(build_instance(layout, u as u32, target, &hist, cfg.max_seq, 1.0));
                neg.push(build_instance(layout, u as u32, negative, &hist, cfg.max_seq, 0.0));
            }
            let pb = Batch::from_instances(&pos);
            let nb = Batch::from_instances(&neg);
            let mut g = Graph::new();
            let y_pos = model.forward(&mut g, ps, &pb, true, &mut rng);
            let y_neg = model.forward(&mut g, ps, &nb, true, &mut rng);
            let diff = g.sub(y_pos, y_neg);
            // −log σ(x) = softplus(−x)
            let ndiff = g.neg(diff);
            let per = g.softplus(ndiff);
            let loss = g.mean_all(per);
            epoch_loss += g.scalar_value(loss) as f64;
            batches += 1;
            ps.zero_grads();
            g.backward(loss, ps);
            opt.step(ps).expect("finite gradients");
            steps += 1;
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f64);
        if after_epoch(epoch_losses.len() - 1, ps) {
            break;
        }
    }
    TrainReport { epoch_losses, seconds: start.elapsed().as_secs_f64(), steps, target_offset: 0.0 }
}

/// Trains with the binary log loss (Eq. 24), sampling
/// [`TrainConfig::ctr_negatives`] unobserved items per positive (§IV-D).
pub fn train_ctr(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
) -> TrainReport {
    train_ctr_with_hook(model, ps, split, layout, sampler, cfg, |_, _| false)
}

/// [`train_ctr`] with an `after_epoch(epoch, ps) -> stop` hook (see
/// [`train_ranking_with_hook`]).
pub fn train_ctr_with_hook(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
    mut after_epoch: impl FnMut(usize, &mut ParamStore) -> bool,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut positions = training_positions(split);
    let start = Instant::now();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut steps = 0usize;
    // keep the *instance* count per batch near batch_size
    let group = 1 + cfg.ctr_negatives;
    let positives_per_batch = (cfg.batch_size / group).max(1);

    for _ in 0..cfg.epochs {
        positions.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in positions.chunks(positives_per_batch) {
            let mut insts: Vec<Instance> = Vec::with_capacity(chunk.len() * group);
            for &(u, i) in chunk {
                let hist = history(split, u, i);
                let target = split.train[u][i].item;
                insts.push(build_instance(layout, u as u32, target, &hist, cfg.max_seq, 1.0));
                for _ in 0..cfg.ctr_negatives {
                    let negative = sampler.sample(u, &mut rng);
                    insts.push(build_instance(layout, u as u32, negative, &hist, cfg.max_seq, 0.0));
                }
            }
            let batch = Batch::from_instances(&insts);
            let mut g = Graph::new();
            let logits = model.forward(&mut g, ps, &batch, true, &mut rng);
            let per = g.bce_with_logits(logits, &batch.targets);
            let loss = g.mean_all(per);
            epoch_loss += g.scalar_value(loss) as f64;
            batches += 1;
            ps.zero_grads();
            g.backward(loss, ps);
            opt.step(ps).expect("finite gradients");
            steps += 1;
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f64);
        if after_epoch(epoch_losses.len() - 1, ps) {
            break;
        }
    }
    TrainReport { epoch_losses, seconds: start.elapsed().as_secs_f64(), steps, target_offset: 0.0 }
}

/// Trains with the squared-error loss (Eq. 26); targets are the observed
/// ratings, no negative sampling.
///
/// Targets are centred on the training-set mean rating (returned as
/// [`TrainReport::target_offset`]) — equivalent to initialising the global
/// bias at the mean, the standard warm start for rating predictors; without
/// it Adam spends hundreds of steps dragging w₀ from 0 to ≈3.5.
pub fn train_rating(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    cfg: &TrainConfig,
) -> TrainReport {
    train_rating_with_hook(model, ps, split, layout, cfg, |_, _| false)
}

/// [`train_rating`] with an `after_epoch(epoch, ps) -> stop` hook (see
/// [`train_ranking_with_hook`]).
pub fn train_rating_with_hook(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    cfg: &TrainConfig,
    mut after_epoch: impl FnMut(usize, &mut ParamStore) -> bool,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut positions = training_positions(split);
    let start = Instant::now();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut steps = 0usize;
    let offset = {
        let (sum, count) = split
            .train
            .iter()
            .flatten()
            .fold((0.0f64, 0usize), |(s, c), e| (s + e.rating as f64, c + 1));
        (sum / count.max(1) as f64) as f32
    };

    for _ in 0..cfg.epochs {
        positions.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in positions.chunks(cfg.batch_size) {
            let insts: Vec<Instance> = chunk
                .iter()
                .map(|&(u, i)| {
                    let hist = history(split, u, i);
                    let e = split.train[u][i];
                    build_instance(layout, u as u32, e.item, &hist, cfg.max_seq, e.rating - offset)
                })
                .collect();
            let batch = Batch::from_instances(&insts);
            let mut g = Graph::new();
            let pred = model.forward(&mut g, ps, &batch, true, &mut rng);
            let targets = g.input(Tensor::vector(batch.targets.clone()));
            let err = g.sub(pred, targets);
            let sq = g.square(err);
            let loss = g.mean_all(sq);
            epoch_loss += g.scalar_value(loss) as f64;
            batches += 1;
            ps.zero_grads();
            g.backward(loss, ps);
            opt.step(ps).expect("finite gradients");
            steps += 1;
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f64);
        if after_epoch(epoch_losses.len() - 1, ps) {
            break;
        }
    }
    TrainReport {
        epoch_losses,
        seconds: start.elapsed().as_secs_f64(),
        steps,
        target_offset: offset,
    }
}
