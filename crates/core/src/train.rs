//! Task-specific training loops (paper §IV), serial or data-parallel.
//!
//! All three tasks share the same skeleton: enumerate training positions
//! (user, prefix-length) pairs from the leave-one-out training split, build
//! mini-batches of [`seqfm_data::Instance`]s, run a forward pass of any
//! [`SeqModel`], apply the task loss, and step Adam (§IV-D).
//!
//! * ranking — BPR pairwise loss over (positive, sampled-negative) pairs
//!   (Eq. 21);
//! * CTR — log loss with `ctr_negatives` sampled negatives per positive
//!   (Eq. 24, §IV-D uses 5);
//! * rating — squared error (Eq. 26), no negative sampling.
//!
//! ## Data-parallel training
//!
//! With [`TrainConfig::workers`] > 1, every mini-batch is split into
//! contiguous shards over a scoped thread pool. Each worker refreshes its
//! own [`ParamStore`] from the master snapshot, builds its shard's
//! instances with a **per-shard RNG stream** derived from
//! [`TrainConfig::seed`] (see [`seqfm_parallel::shard_seed`]), runs
//! forward/backward on its own [`Graph`], and scales its shard loss by the
//! shard fraction so that the summed gradients equal the full-batch
//! gradient. The master then merges worker gradients **in worker order** (a
//! synchronous all-reduce) and takes one Adam step. The trajectory is a
//! pure function of the config — it never depends on thread scheduling —
//! and `workers == 1` takes the exact pre-existing serial path, bit for
//! bit.

use crate::SeqModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_data::{build_instance, Batch, FeatureLayout, Instance, LeaveOneOut, NegativeSampler};
use seqfm_nn::{Adam, Optimizer};
use seqfm_parallel::{partition, shard_seed, ThreadPool};
use seqfm_tensor::Tensor;
use std::time::Instant;

/// Trainer configuration shared by all tasks.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training positions.
    pub epochs: usize,
    /// Mini-batch size (paper: 512 on GPU; smaller default for CPU).
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-4 at full scale; larger at small
    /// scale — see EXPERIMENTS.md).
    pub lr: f32,
    /// Maximum dynamic sequence length n˙ fed to the models.
    pub max_seq: usize,
    /// Negatives per positive for CTR training (paper: 5).
    pub ctr_negatives: usize,
    /// RNG seed controlling shuffling, negative sampling, and dropout.
    pub seed: u64,
    /// Data-parallel training workers. `1` (the default) is the serial
    /// path; `w > 1` splits every mini-batch into `w` shards trained
    /// against a shared parameter snapshot with a synchronous gradient
    /// all-reduce. Defaults to the `SEQFM_WORKERS` environment variable
    /// when set, else 1 — never to the machine's core count, so default
    /// trajectories stay reproducible across hosts.
    pub workers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 128,
            lr: 3e-3,
            max_seq: 20,
            ctr_negatives: 5,
            seed: 42,
            workers: env_workers(),
        }
    }
}

/// `SEQFM_WORKERS` when set (same parse as the kernel pool's sizing —
/// see [`seqfm_parallel::env_workers`]), else 1: training stays serial
/// unless explicitly opted in, so default trajectories are reproducible
/// across hosts.
fn env_workers() -> usize {
    seqfm_parallel::env_workers().unwrap_or(1)
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds spent in the loop (Fig. 4 measurements).
    pub seconds: f64,
    /// Optimizer steps taken.
    pub steps: usize,
    /// Constant subtracted from regression targets during training (the
    /// training-set mean rating); add it back to raw predictions. Zero for
    /// ranking/CTR.
    pub target_offset: f32,
}

impl TrainReport {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// All (user, prefix_len) training positions with non-empty history.
fn training_positions(split: &LeaveOneOut) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (u, seq) in split.train.iter().enumerate() {
        for i in 1..seq.len() {
            out.push((u, i));
        }
    }
    out
}

fn history(split: &LeaveOneOut, u: usize, prefix: usize) -> Vec<u32> {
    split.train[u][..prefix].iter().map(|e| e.item).collect()
}

fn shard_batch(instances: &[Instance]) -> Batch {
    Batch::try_from_instances(instances).expect("training batches are non-empty and rectangular")
}

/// Builds the BPR pairwise loss (Eq. 21) for one shard of positions,
/// drawing one negative per positive from `rng`. Shared verbatim by the
/// serial path (shard == whole chunk, `rng` == the run RNG) and by every
/// data-parallel worker (shard slice, per-shard stream), so both consume
/// randomness and emit graph ops in the identical order.
#[allow(clippy::too_many_arguments)]
fn ranking_shard_loss(
    model: &dyn SeqModel,
    g: &mut Graph,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
    shard: &[(usize, usize)],
    rng: &mut StdRng,
) -> Var {
    let mut pos = Vec::with_capacity(shard.len());
    let mut neg = Vec::with_capacity(shard.len());
    for &(u, i) in shard {
        let hist = history(split, u, i);
        let target = split.train[u][i].item;
        let negative = sampler.sample(u, rng);
        pos.push(build_instance(layout, u as u32, target, &hist, cfg.max_seq, 1.0));
        neg.push(build_instance(layout, u as u32, negative, &hist, cfg.max_seq, 0.0));
    }
    let pb = shard_batch(&pos);
    let nb = shard_batch(&neg);
    let y_pos = model.forward(g, ps, &pb, true, rng);
    let y_neg = model.forward(g, ps, &nb, true, rng);
    let diff = g.sub(y_pos, y_neg);
    // −log σ(x) = softplus(−x)
    let ndiff = g.neg(diff);
    let per = g.softplus(ndiff);
    g.mean_all(per)
}

/// Builds the CTR log loss (Eq. 24) for one shard of positions, sampling
/// [`TrainConfig::ctr_negatives`] negatives per positive.
#[allow(clippy::too_many_arguments)]
fn ctr_shard_loss(
    model: &dyn SeqModel,
    g: &mut Graph,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
    shard: &[(usize, usize)],
    rng: &mut StdRng,
) -> Var {
    let group = 1 + cfg.ctr_negatives;
    let mut insts: Vec<Instance> = Vec::with_capacity(shard.len() * group);
    for &(u, i) in shard {
        let hist = history(split, u, i);
        let target = split.train[u][i].item;
        insts.push(build_instance(layout, u as u32, target, &hist, cfg.max_seq, 1.0));
        for _ in 0..cfg.ctr_negatives {
            let negative = sampler.sample(u, rng);
            insts.push(build_instance(layout, u as u32, negative, &hist, cfg.max_seq, 0.0));
        }
    }
    let batch = shard_batch(&insts);
    let logits = model.forward(g, ps, &batch, true, rng);
    let per = g.bce_with_logits(logits, &batch.targets);
    g.mean_all(per)
}

/// Builds the squared-error loss (Eq. 26) for one shard of positions, with
/// targets centred on `offset`.
#[allow(clippy::too_many_arguments)]
fn rating_shard_loss(
    model: &dyn SeqModel,
    g: &mut Graph,
    ps: &ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    cfg: &TrainConfig,
    offset: f32,
    shard: &[(usize, usize)],
    rng: &mut StdRng,
) -> Var {
    let insts: Vec<Instance> = shard
        .iter()
        .map(|&(u, i)| {
            let hist = history(split, u, i);
            let e = split.train[u][i];
            build_instance(layout, u as u32, e.item, &hist, cfg.max_seq, e.rating - offset)
        })
        .collect();
    let batch = shard_batch(&insts);
    let pred = model.forward(g, ps, &batch, true, rng);
    let targets = g.input(Tensor::vector(batch.targets.clone()));
    let err = g.sub(pred, targets);
    let sq = g.square(err);
    g.mean_all(sq)
}

/// Per-worker state of data-parallel training, allocated once per run.
struct WorkerSlot {
    ps: ParamStore,
    /// Reused tape: [`Graph::reset`] between steps keeps the worker's
    /// forward/backward passes allocation-free once its pool is warm.
    graph: Graph,
    loss: f64,
}

/// The pool + worker stores of one data-parallel training run. `None` when
/// the config asks for a single worker (serial path).
struct ParTrainer {
    pool: ThreadPool,
    slots: Vec<WorkerSlot>,
}

impl ParTrainer {
    fn new(master: &ParamStore, cfg: &TrainConfig) -> Option<Self> {
        if cfg.workers <= 1 {
            return None;
        }
        let w = cfg.workers.min(256);
        Some(ParTrainer {
            pool: ThreadPool::new(w),
            slots: (0..w)
                .map(|_| WorkerSlot { ps: master.worker_clone(), graph: Graph::new(), loss: 0.0 })
                .collect(),
        })
    }

    /// One synchronous data-parallel gradient step over `chunk`: shard,
    /// compute per-worker gradients against the master snapshot, all-reduce
    /// into `master` (gradients only — the caller owns the optimizer step).
    /// Returns the batch loss: the shard-fraction-weighted sum of shard
    /// means, i.e. the mean loss of the whole chunk.
    ///
    /// Deterministic by construction: shard boundaries come from
    /// [`partition`], each shard's RNG is seeded from `(seed, step, shard)`
    /// via [`shard_seed`], and the reduce walks workers in index order —
    /// thread scheduling never influences the result.
    fn step<F>(
        &mut self,
        master: &mut ParamStore,
        chunk: &[(usize, usize)],
        step: u64,
        seed: u64,
        shard_loss: &F,
    ) -> f64
    where
        F: Fn(&mut Graph, &ParamStore, &[(usize, usize)], &mut StdRng) -> Var + Sync,
    {
        let shards = partition(chunk.len(), self.slots.len());
        let n_shards = shards.len();
        let streams = self.slots.len() as u64;
        let master_ref: &ParamStore = master;
        let slots = &mut self.slots;
        self.pool.scope(|s| {
            for (sidx, (slot, shard)) in slots.iter_mut().zip(&shards).enumerate() {
                let shard_pos = &chunk[shard.clone()];
                let frac = shard_pos.len() as f32 / chunk.len() as f32;
                s.spawn(move || {
                    let mut rng =
                        StdRng::seed_from_u64(shard_seed(seed, step * streams + sidx as u64));
                    let WorkerSlot { ps: wps, graph: g, loss: wloss } = slot;
                    wps.copy_values_from(master_ref);
                    wps.zero_grads();
                    g.reset();
                    let loss = shard_loss(g, wps, shard_pos, &mut rng);
                    let scaled = g.scale(loss, frac);
                    *wloss = g.scalar_value(scaled) as f64;
                    g.backward(scaled, wps);
                });
            }
        });
        master.zero_grads();
        let mut total = 0.0;
        for slot in &self.slots[..n_shards] {
            master.add_grads_from(&slot.ps);
            total += slot.loss;
        }
        total
    }
}

/// Shared epoch skeleton: serial when `par` is `None` (bit-identical to the
/// pre-parallel loop — same RNG, same op order), data-parallel otherwise.
#[allow(clippy::too_many_arguments)]
fn run_epochs<F>(
    ps: &mut ParamStore,
    positions: &mut [(usize, usize)],
    chunk_size: usize,
    cfg: &TrainConfig,
    mut after_epoch: impl FnMut(usize, &mut ParamStore) -> bool,
    shard_loss: F,
) -> (Vec<f64>, usize)
where
    F: Fn(&mut Graph, &ParamStore, &[(usize, usize)], &mut StdRng) -> Var + Sync,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut par = ParTrainer::new(ps, cfg);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut steps = 0usize;
    // One tape reused across every serial mini-batch: `reset()` recycles the
    // node buffers, so steady-state steps build their graphs without heap
    // allocations (the parallel path keeps a graph per worker slot).
    let mut graph = Graph::new();

    for _ in 0..cfg.epochs {
        positions.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in positions.chunks(chunk_size) {
            let loss_val = match &mut par {
                Some(par) => par.step(ps, chunk, steps as u64, cfg.seed, &shard_loss),
                None => {
                    let g = &mut graph;
                    g.reset();
                    let loss = shard_loss(g, ps, chunk, &mut rng);
                    let v = g.scalar_value(loss) as f64;
                    ps.zero_grads();
                    g.backward(loss, ps);
                    v
                }
            };
            epoch_loss += loss_val;
            batches += 1;
            opt.step(ps).expect("finite gradients");
            steps += 1;
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f64);
        if after_epoch(epoch_losses.len() - 1, ps) {
            break;
        }
    }
    (epoch_losses, steps)
}

/// Trains with the BPR pairwise ranking loss (Eq. 21):
/// `L = −Σ log σ(ŷ⁺ − ŷ⁻)`, negatives drawn uniformly from items the user
/// never interacted with.
pub fn train_ranking(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
) -> TrainReport {
    train_ranking_with_hook(model, ps, split, layout, sampler, cfg, |_, _| false)
}

/// [`train_ranking`] with an `after_epoch(epoch, ps) -> stop` hook — the
/// harness uses it for validation-based early selection and early stopping
/// (evaluate on the held-out validation events, checkpoint the best epoch,
/// stop when the metric plateaus, restore the best afterwards). Returning
/// `true` ends training after the current epoch.
pub fn train_ranking_with_hook(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
    after_epoch: impl FnMut(usize, &mut ParamStore) -> bool,
) -> TrainReport {
    let mut positions = training_positions(split);
    let start = Instant::now();
    let (epoch_losses, steps) =
        run_epochs(ps, &mut positions, cfg.batch_size, cfg, after_epoch, |g, ps, shard, rng| {
            ranking_shard_loss(model, g, ps, split, layout, sampler, cfg, shard, rng)
        });
    TrainReport { epoch_losses, seconds: start.elapsed().as_secs_f64(), steps, target_offset: 0.0 }
}

/// Trains with the binary log loss (Eq. 24), sampling
/// [`TrainConfig::ctr_negatives`] unobserved items per positive (§IV-D).
pub fn train_ctr(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
) -> TrainReport {
    train_ctr_with_hook(model, ps, split, layout, sampler, cfg, |_, _| false)
}

/// [`train_ctr`] with an `after_epoch(epoch, ps) -> stop` hook (see
/// [`train_ranking_with_hook`]).
pub fn train_ctr_with_hook(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
    after_epoch: impl FnMut(usize, &mut ParamStore) -> bool,
) -> TrainReport {
    let mut positions = training_positions(split);
    let start = Instant::now();
    // keep the *instance* count per batch near batch_size
    let group = 1 + cfg.ctr_negatives;
    let positives_per_batch = (cfg.batch_size / group).max(1);
    let (epoch_losses, steps) = run_epochs(
        ps,
        &mut positions,
        positives_per_batch,
        cfg,
        after_epoch,
        |g, ps, shard, rng| ctr_shard_loss(model, g, ps, split, layout, sampler, cfg, shard, rng),
    );
    TrainReport { epoch_losses, seconds: start.elapsed().as_secs_f64(), steps, target_offset: 0.0 }
}

/// Trains with the squared-error loss (Eq. 26); targets are the observed
/// ratings, no negative sampling.
///
/// Targets are centred on the training-set mean rating (returned as
/// [`TrainReport::target_offset`]) — equivalent to initialising the global
/// bias at the mean, the standard warm start for rating predictors; without
/// it Adam spends hundreds of steps dragging w₀ from 0 to ≈3.5.
pub fn train_rating(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    cfg: &TrainConfig,
) -> TrainReport {
    train_rating_with_hook(model, ps, split, layout, cfg, |_, _| false)
}

/// [`train_rating`] with an `after_epoch(epoch, ps) -> stop` hook (see
/// [`train_ranking_with_hook`]).
pub fn train_rating_with_hook(
    model: &dyn SeqModel,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    cfg: &TrainConfig,
    after_epoch: impl FnMut(usize, &mut ParamStore) -> bool,
) -> TrainReport {
    let mut positions = training_positions(split);
    let start = Instant::now();
    let offset = {
        let (sum, count) = split
            .train
            .iter()
            .flatten()
            .fold((0.0f64, 0usize), |(s, c), e| (s + e.rating as f64, c + 1));
        (sum / count.max(1) as f64) as f32
    };
    let (epoch_losses, steps) =
        run_epochs(ps, &mut positions, cfg.batch_size, cfg, after_epoch, |g, ps, shard, rng| {
            rating_shard_loss(model, g, ps, split, layout, cfg, offset, shard, rng)
        });
    TrainReport {
        epoch_losses,
        seconds: start.elapsed().as_secs_f64(),
        steps,
        target_offset: offset,
    }
}
