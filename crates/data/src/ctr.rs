//! Synthetic click-log generator (stand-in for Trivago / Taobao).
//!
//! ## Why this preserves the paper's phenomenon
//!
//! The CTR discussion in the paper (§VI-B, Fig. 3) hinges on *how far back*
//! the predictive signal reaches: on Taobao "users' clicking behavior is
//! usually motivated by their intrinsic long-term preferences, so a
//! relatively larger n˙ can help", while Trivago sessions are short-intent.
//! We therefore draw each click's cluster from a mixture of
//!
//! * the user's **static long-term preference** distribution, and
//! * the **empirical distribution of the last `memory_window` clicks**
//!   (session intent),
//!
//! controlled by `long_term_weight`. The Taobao preset uses a high weight and
//! a wide window (signal = whole history); Trivago uses a low weight and a
//! narrow window (signal = last few clicks). Sequence-aware models recover
//! either signal; set-based FMs lose the windowed component entirely.

use crate::common::{Dataset, Event};
use crate::genutil::{
    assign_clusters, cluster_members, preference_cdf, sample_cdf, timestamps, validate_common,
    validate_prob, zipf_cdf, ConfigError,
};
use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the click-log generator.
#[derive(Clone, Debug)]
pub struct CtrConfig {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of links (objects).
    pub n_items: usize,
    /// Number of link clusters (topics / product categories).
    pub n_clusters: usize,
    /// Minimum clicks per user.
    pub min_len: usize,
    /// Maximum clicks per user.
    pub max_len: usize,
    /// Mixture weight of the long-term preference (vs session intent).
    pub long_term_weight: f64,
    /// How many recent clicks define the session intent distribution.
    pub memory_window: usize,
    /// Zipf exponent of within-cluster link popularity.
    pub zipf_s: f64,
    /// Peakedness of user cluster preferences.
    pub pref_sharpness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CtrConfig {
    /// Trivago-like preset: short-intent web sessions.
    pub fn trivago(scale: Scale) -> Self {
        let f = scale.factor();
        CtrConfig {
            name: "trivago-sim".into(),
            n_users: 130 * f,
            n_items: 340 * f,
            n_clusters: 26,
            min_len: 12,
            max_len: 36,
            long_term_weight: 0.35,
            memory_window: 5,
            zipf_s: 1.05,
            pref_sharpness: 1.1,
            seed: 0x0712_1A60,
        }
    }

    /// Taobao-like preset: long-term shopping preference.
    pub fn taobao(scale: Scale) -> Self {
        let f = scale.factor();
        CtrConfig {
            name: "taobao-sim".into(),
            n_users: 140 * f,
            n_items: 380 * f,
            n_clusters: 28,
            min_len: 14,
            max_len: 40,
            long_term_weight: 0.75,
            memory_window: 40,
            zipf_s: 1.0,
            pref_sharpness: 1.4,
            seed: 0x7A0_BA0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_common(self.n_users, self.n_items, self.n_clusters, self.min_len, self.max_len)?;
        validate_prob("long_term_weight", self.long_term_weight)?;
        if self.memory_window == 0 {
            return Err(ConfigError::BadLengths { min: 0, max: self.memory_window });
        }
        Ok(())
    }
}

/// Generates a click-log dataset.
///
/// # Errors
/// Returns [`ConfigError`] for invalid configurations.
pub fn generate(cfg: &CtrConfig) -> Result<Dataset, ConfigError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let item_cluster = assign_clusters(&mut rng, cfg.n_items, cfg.n_clusters);
    let members = cluster_members(&item_cluster, cfg.n_clusters);
    let zipfs: Vec<Vec<f64>> = members.iter().map(|m| zipf_cdf(m.len(), cfg.zipf_s)).collect();

    let mut per_user = Vec::with_capacity(cfg.n_users);
    for _ in 0..cfg.n_users {
        let pref = preference_cdf(&mut rng, cfg.n_clusters, cfg.pref_sharpness);
        let len = rng.gen_range(cfg.min_len..=cfg.max_len);
        let times = timestamps(&mut rng, len);
        let mut recent: Vec<usize> = Vec::with_capacity(cfg.memory_window);
        let mut seq = Vec::with_capacity(len);
        for &t in &times {
            let c = if recent.is_empty() || rng.gen::<f64>() < cfg.long_term_weight {
                sample_cdf(&mut rng, &pref)
            } else {
                // session intent: resample a cluster from the recent window
                recent[rng.gen_range(0..recent.len())]
            };
            let item = members[c][sample_cdf(&mut rng, &zipfs[c])];
            seq.push(Event { item, time: t, rating: 1.0 });
            if recent.len() == cfg.memory_window {
                recent.remove(0);
            }
            recent.push(c);
        }
        per_user.push(seq);
    }

    let ds = Dataset {
        name: cfg.name.clone(),
        n_users: cfg.n_users,
        n_items: cfg.n_items,
        item_cluster,
        per_user,
    };
    ds.validate(3);
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(long_term: f64, window: usize) -> CtrConfig {
        CtrConfig {
            name: "t".into(),
            n_users: 40,
            n_items: 80,
            n_clusters: 8,
            min_len: 10,
            max_len: 20,
            long_term_weight: long_term,
            memory_window: window,
            zipf_s: 1.0,
            pref_sharpness: 1.5,
            seed: 3,
        }
    }

    #[test]
    fn deterministic_and_bounded() {
        let cfg = small(0.5, 5);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.per_user, b.per_user);
        for seq in &a.per_user {
            assert!(seq.len() >= 10 && seq.len() <= 20);
        }
    }

    /// Average number of distinct clusters per user sequence: intent-driven
    /// sequences (low long-term weight, small window) should revisit few
    /// clusters in a row — measured via consecutive-cluster repeat rate.
    fn repeat_rate(ds: &Dataset) -> f64 {
        let mut rep = 0usize;
        let mut tot = 0usize;
        for seq in &ds.per_user {
            for w in seq.windows(2) {
                if ds.item_cluster[w[0].item as usize] == ds.item_cluster[w[1].item as usize] {
                    rep += 1;
                }
                tot += 1;
            }
        }
        rep as f64 / tot as f64
    }

    #[test]
    fn session_intent_increases_local_coherence() {
        let intent = generate(&small(0.2, 3)).unwrap();
        let longterm = generate(&small(0.9, 3)).unwrap();
        let r_intent = repeat_rate(&intent);
        let r_long = repeat_rate(&longterm);
        assert!(
            r_intent > r_long + 0.05,
            "intent-driven repeat rate {r_intent:.3} not above long-term {r_long:.3}"
        );
    }

    #[test]
    fn presets_validate_and_differ() {
        let tr = CtrConfig::trivago(Scale::Small);
        let tb = CtrConfig::taobao(Scale::Small);
        assert!(tr.validate().is_ok());
        assert!(tb.validate().is_ok());
        assert!(tb.long_term_weight > tr.long_term_weight);
        assert!(tb.memory_window > tr.memory_window);
    }

    #[test]
    fn zero_window_rejected() {
        let mut cfg = small(0.5, 5);
        cfg.memory_window = 0;
        assert!(generate(&cfg).is_err());
    }
}
