//! Core data model: events, datasets, feature layout, instances, batches.
//!
//! All six paper datasets reduce to the same shape after preprocessing: per
//! user, a chronological sequence of (item, timestamp[, rating]) events. The
//! SeqFM input format (paper Eq. 20/22/25) is then derived per prediction:
//! a *static* block of one-hot indices `[user, candidate(, side features)]`
//! and a *dynamic* block containing the user's preceding items, left-padded
//! to the maximum sequence length n˙.

use std::fmt;

/// One user–item interaction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Item (object) index in `0..n_items`.
    pub item: u32,
    /// Timestamp; strictly increasing within a user's sequence.
    pub time: u32,
    /// Explicit rating (regression datasets) or 1.0 for implicit feedback.
    pub rating: f32,
}

/// A chronological interaction dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name (e.g. `gowalla-sim`).
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items ("objects" in the paper's Table I).
    pub n_items: usize,
    /// Ground-truth cluster of each item (used by generators and ablation
    /// analysis; models never see this).
    pub item_cluster: Vec<u16>,
    /// Per-user event sequences, chronologically sorted.
    pub per_user: Vec<Vec<Event>>,
}

impl Dataset {
    /// Total number of interactions.
    pub fn n_instances(&self) -> usize {
        self.per_user.iter().map(Vec::len).sum()
    }

    /// Table-I style statistics.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            instances: self.n_instances(),
            users: self.n_users,
            objects: self.n_items,
            sparse_features: self.n_users + self.n_items,
        }
    }

    /// Asserts internal invariants (used by tests and generators):
    /// chronological order, valid item ids, minimum sequence length.
    ///
    /// # Panics
    /// Panics with a description of the violated invariant.
    pub fn validate(&self, min_len: usize) {
        assert_eq!(self.per_user.len(), self.n_users, "per_user len != n_users");
        assert_eq!(self.item_cluster.len(), self.n_items, "item_cluster len != n_items");
        for (u, seq) in self.per_user.iter().enumerate() {
            assert!(seq.len() >= min_len, "user {u} has only {} events (< {min_len})", seq.len());
            for w in seq.windows(2) {
                assert!(w[0].time < w[1].time, "user {u}: timestamps not strictly increasing");
            }
            for e in seq {
                assert!((e.item as usize) < self.n_items, "user {u}: item {} out of range", e.item);
            }
        }
    }

    /// Keeps only the first `fraction` of each user's events (Fig. 4
    /// scalability experiment: training on {0.2, …, 1.0} of the data).
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn subset(&self, fraction: f64) -> Dataset {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1], got {fraction}");
        let per_user = self
            .per_user
            .iter()
            .map(|seq| {
                let keep = ((seq.len() as f64 * fraction).round() as usize).max(3).min(seq.len());
                seq[..keep].to_vec()
            })
            .collect();
        Dataset {
            name: format!("{}@{:.1}", self.name, fraction),
            n_users: self.n_users,
            n_items: self.n_items,
            item_cluster: self.item_cluster.clone(),
            per_user,
        }
    }
}

/// Table I row: dataset statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// `#Instance`.
    pub instances: usize,
    /// `#User`.
    pub users: usize,
    /// `#Object`.
    pub objects: usize,
    /// `#Feature(Sparse)` — users + objects (the one-hot vocabulary).
    pub sparse_features: usize,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>10} {:>8} {:>8} {:>10}",
            self.name, self.instances, self.users, self.objects, self.sparse_features
        )
    }
}

/// Index layout of the sparse one-hot feature space shared by all models.
///
/// Static block (`m° = n_users + n_items` features): user one-hot in
/// `[0, n_users)`, candidate one-hot in `[n_users, n_users + n_items)`.
/// Dynamic block (`m˙ = n_items` features): previously interacted items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeatureLayout {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
}

impl FeatureLayout {
    /// Layout for a dataset.
    pub fn of(ds: &Dataset) -> Self {
        FeatureLayout { n_users: ds.n_users, n_items: ds.n_items }
    }

    /// Width of the static one-hot space `m°`.
    pub fn m_static(&self) -> usize {
        self.n_users + self.n_items
    }

    /// Width of the dynamic one-hot space `m˙`.
    pub fn m_dynamic(&self) -> usize {
        self.n_items
    }

    /// Static index of user `u`.
    pub fn user_feature(&self, u: u32) -> i64 {
        u as i64
    }

    /// Static index of candidate item `v`.
    pub fn item_feature(&self, v: u32) -> i64 {
        (self.n_users + v as usize) as i64
    }
}

/// Padding marker in index sequences (embeds to the zero vector).
pub const PAD: i64 = -1;

/// One model input: static indices plus the left-padded dynamic sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance {
    /// Static one-hot indices (`n°` entries: user, candidate).
    pub static_idx: Vec<i64>,
    /// Dynamic one-hot indices, left-padded with [`PAD`] to length n˙.
    pub dyn_idx: Vec<i64>,
    /// Supervision target (label / rating; unused for BPR ranking).
    pub target: f32,
}

/// Builds an instance for predicting `(user, candidate)` given the user's
/// `history` (chronological items *before* the prediction point).
///
/// Keeps the most recent `max_seq` history items and left-pads with [`PAD`]
/// (paper §III: "If the sequence length is less than n˙, we repeatedly add a
/// padding vector to the top").
pub fn build_instance(
    layout: &FeatureLayout,
    user: u32,
    candidate: u32,
    history: &[u32],
    max_seq: usize,
    target: f32,
) -> Instance {
    let take = history.len().min(max_seq);
    let recent = &history[history.len() - take..];
    let mut dyn_idx = vec![PAD; max_seq - take];
    dyn_idx.extend(recent.iter().map(|&it| it as i64));
    Instance {
        static_idx: vec![layout.user_feature(user), layout.item_feature(candidate)],
        dyn_idx,
        target,
    }
}

/// Why a slice of [`Instance`]s cannot form a [`Batch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// No instances were given — a batch must score at least one row.
    Empty,
    /// Instance `index` has a static width different from instance 0.
    RaggedStatic {
        /// Offending instance index.
        index: usize,
        /// Width of instance 0.
        expected: usize,
        /// Width of the offending instance.
        got: usize,
    },
    /// Instance `index` has a dynamic width different from instance 0.
    RaggedDynamic {
        /// Offending instance index.
        index: usize,
        /// Width of instance 0.
        expected: usize,
        /// Width of the offending instance.
        got: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "empty batch"),
            Self::RaggedStatic { index, expected, got } => {
                write!(f, "ragged static widths in batch: instance {index} has {got}, expected {expected}")
            }
            Self::RaggedDynamic { index, expected, got } => {
                write!(f, "ragged dynamic widths in batch: instance {index} has {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// A mini-batch of instances flattened for embedding gathers.
///
/// The `Default` batch is empty (`len == 0`) — a reusable buffer for callers
/// that rebuild batches in place, like the blocked catalog scorer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Batch {
    /// Batch size.
    pub len: usize,
    /// Static features per instance (`n°`).
    pub n_static: usize,
    /// Dynamic sequence length (`n˙`).
    pub n_dynamic: usize,
    /// Row-major `[len, n_static]` static indices.
    pub static_idx: Vec<i64>,
    /// Row-major `[len, n_dynamic]` dynamic indices (with [`PAD`]).
    pub dyn_idx: Vec<i64>,
    /// Targets, one per instance.
    pub targets: Vec<f32>,
}

impl Batch {
    /// Assembles a batch from instances.
    ///
    /// This was the panicking convenience once used by the training loops;
    /// every in-tree caller (training included) now goes through
    /// [`Batch::try_from_instances`] and decides explicitly how to surface
    /// the [`BatchError`].
    ///
    /// # Panics
    /// Panics if `instances` is empty or static/dynamic widths disagree.
    #[deprecated(
        since = "0.1.0",
        note = "use `Batch::try_from_instances` and handle the `BatchError`"
    )]
    pub fn from_instances(instances: &[Instance]) -> Batch {
        match Self::try_from_instances(instances) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Assembles a batch from instances, reporting invalid input as a value.
    ///
    /// # Errors
    /// [`BatchError::Empty`] for an empty slice;
    /// [`BatchError::RaggedStatic`]/[`BatchError::RaggedDynamic`] when an
    /// instance's widths differ from instance 0.
    pub fn try_from_instances(instances: &[Instance]) -> Result<Batch, BatchError> {
        if instances.is_empty() {
            return Err(BatchError::Empty);
        }
        let n_static = instances[0].static_idx.len();
        let n_dynamic = instances[0].dyn_idx.len();
        let mut static_idx = Vec::with_capacity(instances.len() * n_static);
        let mut dyn_idx = Vec::with_capacity(instances.len() * n_dynamic);
        let mut targets = Vec::with_capacity(instances.len());
        for (index, inst) in instances.iter().enumerate() {
            if inst.static_idx.len() != n_static {
                return Err(BatchError::RaggedStatic {
                    index,
                    expected: n_static,
                    got: inst.static_idx.len(),
                });
            }
            if inst.dyn_idx.len() != n_dynamic {
                return Err(BatchError::RaggedDynamic {
                    index,
                    expected: n_dynamic,
                    got: inst.dyn_idx.len(),
                });
            }
            static_idx.extend_from_slice(&inst.static_idx);
            dyn_idx.extend_from_slice(&inst.dyn_idx);
            targets.push(inst.target);
        }
        Ok(Batch { len: instances.len(), n_static, n_dynamic, static_idx, dyn_idx, targets })
    }

    /// Replaces the candidate-item static feature of every instance with
    /// `candidates[i]` — used to score many candidates against the same
    /// user/history cheaply during ranking evaluation.
    ///
    /// # Panics
    /// Panics if `candidates.len() != self.len`.
    pub fn with_candidates(&self, layout: &FeatureLayout, candidates: &[u32]) -> Batch {
        assert_eq!(candidates.len(), self.len, "candidate count mismatch");
        let mut b = self.clone();
        for (i, &c) in candidates.iter().enumerate() {
            b.static_idx[i * self.n_static + 1] = layout.item_feature(c);
        }
        b
    }

    /// The candidate item of instance `i` (inverse of
    /// [`FeatureLayout::item_feature`]).
    pub fn candidate_item(&self, layout: &FeatureLayout, i: usize) -> u32 {
        (self.static_idx[i * self.n_static + 1] - layout.n_users as i64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        Dataset {
            name: "tiny".into(),
            n_users: 2,
            n_items: 4,
            item_cluster: vec![0, 0, 1, 1],
            per_user: vec![
                vec![
                    Event { item: 0, time: 1, rating: 1.0 },
                    Event { item: 2, time: 2, rating: 1.0 },
                    Event { item: 3, time: 5, rating: 1.0 },
                ],
                vec![
                    Event { item: 1, time: 3, rating: 1.0 },
                    Event { item: 0, time: 4, rating: 1.0 },
                    Event { item: 2, time: 9, rating: 1.0 },
                ],
            ],
        }
    }

    #[test]
    fn stats_match_table1_columns() {
        let ds = tiny_dataset();
        let s = ds.stats();
        assert_eq!(s.instances, 6);
        assert_eq!(s.users, 2);
        assert_eq!(s.objects, 4);
        assert_eq!(s.sparse_features, 6);
        ds.validate(3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn validate_catches_time_travel() {
        let mut ds = tiny_dataset();
        ds.per_user[0][2].time = 0;
        ds.validate(1);
    }

    #[test]
    fn layout_indices_are_disjoint() {
        let ds = tiny_dataset();
        let l = FeatureLayout::of(&ds);
        assert_eq!(l.m_static(), 6);
        assert_eq!(l.m_dynamic(), 4);
        assert_eq!(l.user_feature(1), 1);
        assert_eq!(l.item_feature(0), 2);
        assert_eq!(l.item_feature(3), 5);
    }

    #[test]
    fn instance_left_pads_and_truncates() {
        let l = FeatureLayout { n_users: 2, n_items: 4 };
        // short history → left padding
        let inst = build_instance(&l, 0, 3, &[1, 2], 4, 1.0);
        assert_eq!(inst.dyn_idx, vec![PAD, PAD, 1, 2]);
        assert_eq!(inst.static_idx, vec![0, 5]);
        // long history → most recent max_seq items
        let inst = build_instance(&l, 1, 0, &[0, 1, 2, 3, 1], 3, 0.0);
        assert_eq!(inst.dyn_idx, vec![2, 3, 1]);
    }

    #[test]
    fn batch_flattening_roundtrip() {
        let l = FeatureLayout { n_users: 2, n_items: 4 };
        let insts =
            vec![build_instance(&l, 0, 1, &[2], 2, 1.0), build_instance(&l, 1, 3, &[0, 1], 2, 0.0)];
        let b = Batch::try_from_instances(&insts).expect("valid batch");
        assert_eq!(b.len, 2);
        assert_eq!(b.static_idx, vec![0, 3, 1, 5]);
        assert_eq!(b.dyn_idx, vec![PAD, 2, 0, 1]);
        assert_eq!(b.targets, vec![1.0, 0.0]);
        assert_eq!(b.candidate_item(&l, 0), 1);
        assert_eq!(b.candidate_item(&l, 1), 3);
    }

    #[test]
    fn empty_batch_is_an_error_not_a_crash() {
        assert_eq!(Batch::try_from_instances(&[]), Err(BatchError::Empty));
        let msg = BatchError::Empty.to_string();
        assert_eq!(msg, "empty batch");
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    #[allow(deprecated)] // the deprecated constructor's contract is under test
    fn from_instances_still_panics_on_empty() {
        let _ = Batch::from_instances(&[]);
    }

    #[test]
    fn ragged_widths_are_reported_with_index() {
        let l = FeatureLayout { n_users: 2, n_items: 4 };
        let good = build_instance(&l, 0, 1, &[2], 3, 1.0);
        let mut bad_dyn = build_instance(&l, 1, 2, &[0], 3, 0.0);
        bad_dyn.dyn_idx.push(PAD);
        assert_eq!(
            Batch::try_from_instances(&[good.clone(), bad_dyn]),
            Err(BatchError::RaggedDynamic { index: 1, expected: 3, got: 4 })
        );
        let mut bad_static = build_instance(&l, 1, 2, &[0], 3, 0.0);
        bad_static.static_idx.push(0);
        assert_eq!(
            Batch::try_from_instances(&[good.clone(), bad_static]),
            Err(BatchError::RaggedStatic { index: 1, expected: 2, got: 3 })
        );
        // The Ok path matches the (deprecated) panicking constructor.
        let ok = Batch::try_from_instances(std::slice::from_ref(&good)).unwrap();
        #[allow(deprecated)]
        let direct = Batch::from_instances(std::slice::from_ref(&good));
        assert_eq!(ok.static_idx, direct.static_idx);
        assert_eq!(ok.dyn_idx, direct.dyn_idx);
    }

    #[test]
    fn with_candidates_swaps_only_item_feature() {
        let l = FeatureLayout { n_users: 2, n_items: 4 };
        let insts = vec![build_instance(&l, 0, 1, &[2], 2, 1.0)];
        let b = Batch::try_from_instances(&insts).expect("valid batch");
        let swapped = b.with_candidates(&l, &[3]);
        assert_eq!(swapped.static_idx, vec![0, 5]);
        assert_eq!(swapped.dyn_idx, b.dyn_idx);
        assert_eq!(swapped.candidate_item(&l, 0), 3);
    }

    #[test]
    fn subset_keeps_prefix_and_floor() {
        let ds = tiny_dataset();
        let half = ds.subset(0.5);
        // floor of 3 events keeps everything here
        assert_eq!(half.per_user[0].len(), 3);
        assert!(half.name.contains("0.5"));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn subset_validates_fraction() {
        let _ = tiny_dataset().subset(0.0);
    }
}
