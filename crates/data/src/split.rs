//! Leave-one-out chronological splitting (paper §V-C).
//!
//! "Within each user's transaction, we hold out her/his last record as the
//! ground truth for test and the second last record for validation. All the
//! rest records are used to train the models."

use crate::common::{Dataset, Event};

/// Per-user leave-one-out split.
#[derive(Clone, Debug)]
pub struct LeaveOneOut {
    /// Training prefix per user (everything but the last two events).
    pub train: Vec<Vec<Event>>,
    /// Validation event per user (second-to-last).
    pub valid: Vec<Event>,
    /// Test event per user (last).
    pub test: Vec<Event>,
}

impl LeaveOneOut {
    /// Splits a dataset. Every user must have at least 3 events (the
    /// generators guarantee this; real datasets are filtered the same way in
    /// the paper — users with < 10 interactions are dropped).
    ///
    /// # Panics
    /// Panics if any user has fewer than 3 events.
    pub fn split(ds: &Dataset) -> Self {
        let mut train = Vec::with_capacity(ds.n_users);
        let mut valid = Vec::with_capacity(ds.n_users);
        let mut test = Vec::with_capacity(ds.n_users);
        for (u, seq) in ds.per_user.iter().enumerate() {
            assert!(seq.len() >= 3, "user {u} has {} events; leave-one-out needs ≥ 3", seq.len());
            let n = seq.len();
            train.push(seq[..n - 2].to_vec());
            valid.push(seq[n - 2]);
            test.push(seq[n - 1]);
        }
        LeaveOneOut { train, valid, test }
    }

    /// History visible when predicting the *validation* event of user `u`
    /// (their training prefix).
    pub fn history_for_valid(&self, u: usize) -> Vec<u32> {
        self.train[u].iter().map(|e| e.item).collect()
    }

    /// History visible when predicting the *test* event of user `u`
    /// (training prefix + validation event — temporal causality preserved).
    pub fn history_for_test(&self, u: usize) -> Vec<u32> {
        let mut h = self.history_for_valid(u);
        h.push(self.valid[u].item);
        h
    }

    /// Items the user has interacted with anywhere (train ∪ valid ∪ test) —
    /// the exclusion set for negative sampling.
    pub fn seen_items(&self, u: usize) -> Vec<u32> {
        let mut s: Vec<u32> = self.train[u].iter().map(|e| e.item).collect();
        s.push(self.valid[u].item);
        s.push(self.test[u].item);
        s.sort_unstable();
        s.dedup();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset {
            name: "t".into(),
            n_users: 1,
            n_items: 5,
            item_cluster: vec![0; 5],
            per_user: vec![vec![
                Event { item: 0, time: 1, rating: 1.0 },
                Event { item: 1, time: 2, rating: 1.0 },
                Event { item: 2, time: 3, rating: 1.0 },
                Event { item: 3, time: 4, rating: 1.0 },
            ]],
        }
    }

    #[test]
    fn holds_out_last_two() {
        let s = LeaveOneOut::split(&ds());
        assert_eq!(s.train[0].len(), 2);
        assert_eq!(s.valid[0].item, 2);
        assert_eq!(s.test[0].item, 3);
    }

    #[test]
    fn histories_respect_causality() {
        let s = LeaveOneOut::split(&ds());
        assert_eq!(s.history_for_valid(0), vec![0, 1]);
        // test prediction may additionally see the validation event
        assert_eq!(s.history_for_test(0), vec![0, 1, 2]);
    }

    #[test]
    fn seen_items_cover_all_splits() {
        let s = LeaveOneOut::split(&ds());
        assert_eq!(s.seen_items(0), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "≥ 3")]
    fn rejects_short_users() {
        let mut d = ds();
        d.per_user[0].truncate(2);
        let _ = LeaveOneOut::split(&d);
    }
}
