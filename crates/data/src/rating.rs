//! Synthetic rating generator (stand-in for Amazon Beauty / Toys).
//!
//! ## Why this preserves the paper's phenomenon
//!
//! Ratings decompose into the classic matrix-factorisation part —
//! `μ + b_u + b_i + ⟨p_u, q_i⟩` — which *any* FM-based model can fit, plus a
//! **sequential drift term**: users who recently rated items of the
//! candidate's category rate it differently (enthusiasm/fatigue for a
//! category varies over time). The drift is a function of the *ordered
//! recent history*, so models that treat the history as a set (FM, NFM, AFM,
//! HOFM, Wide&Deep, DeepCross) cannot express it while sequence-aware models
//! (SeqFM, RRN) can — reproducing the Table IV gap, including its modest
//! size (most of the variance is in the static MF part, which is why the
//! paper notes baselines are close together on this task).

use crate::common::{Dataset, Event};
use crate::genutil::{
    assign_clusters, cluster_members, preference_cdf, sample_cdf, timestamps, validate_common,
    zipf_cdf, ConfigError,
};
use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the rating generator.
#[derive(Clone, Debug)]
pub struct RatingConfig {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of item categories.
    pub n_clusters: usize,
    /// Latent dimensionality of the ground-truth MF model.
    pub latent_dim: usize,
    /// Minimum ratings per user.
    pub min_len: usize,
    /// Maximum ratings per user.
    pub max_len: usize,
    /// Magnitude of the sequential drift term (rating points).
    pub drift_weight: f64,
    /// How many recent ratings define the category affinity.
    pub affinity_window: usize,
    /// Observation noise standard deviation (rating points).
    pub noise_std: f64,
    /// Zipf exponent of item popularity.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RatingConfig {
    /// Amazon-Beauty-like preset.
    pub fn beauty(scale: Scale) -> Self {
        let f = scale.factor();
        RatingConfig {
            name: "beauty-sim".into(),
            n_users: 100 * f,
            n_items: 220 * f,
            n_clusters: 20,
            latent_dim: 8,
            min_len: 8,
            max_len: 22,
            drift_weight: 0.9,
            affinity_window: 5,
            noise_std: 0.35,
            zipf_s: 1.0,
            seed: 0xBEA_071,
        }
    }

    /// Amazon-Toys-like preset: slightly sparser, less drift (the paper's
    /// Toys numbers sit closer together than Beauty's).
    pub fn toys(scale: Scale) -> Self {
        let f = scale.factor();
        RatingConfig {
            name: "toys-sim".into(),
            n_users: 90 * f,
            n_items: 240 * f,
            n_clusters: 22,
            latent_dim: 8,
            min_len: 7,
            max_len: 18,
            drift_weight: 0.6,
            affinity_window: 5,
            noise_std: 0.3,
            zipf_s: 1.05,
            seed: 0x70_75_33,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_common(self.n_users, self.n_items, self.n_clusters, self.min_len, self.max_len)?;
        if self.latent_dim == 0 || self.affinity_window == 0 {
            return Err(ConfigError::Empty);
        }
        Ok(())
    }
}

/// Standard-normal sample (Box–Muller; `rand_distr` is unavailable offline).
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fraction of the last `window` events that share the candidate's cluster,
/// centred to `[-0.5, 0.5]` so the drift is signed.
fn affinity(history: &[Event], clusters: &[u16], candidate_cluster: u16, window: usize) -> f64 {
    if history.is_empty() {
        return 0.0;
    }
    let take = history.len().min(window);
    let recent = &history[history.len() - take..];
    let same = recent.iter().filter(|e| clusters[e.item as usize] == candidate_cluster).count();
    same as f64 / take as f64 - 0.5
}

/// Generates a rating dataset with a ground-truth MF + sequential-drift
/// model.
///
/// # Errors
/// Returns [`ConfigError`] for invalid configurations.
pub fn generate(cfg: &RatingConfig) -> Result<Dataset, ConfigError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let item_cluster = assign_clusters(&mut rng, cfg.n_items, cfg.n_clusters);
    let members = cluster_members(&item_cluster, cfg.n_clusters);
    let zipfs: Vec<Vec<f64>> = members.iter().map(|m| zipf_cdf(m.len(), cfg.zipf_s)).collect();

    let k = cfg.latent_dim;
    let lat_scale = 0.6 / (k as f64).sqrt();
    let user_lat: Vec<Vec<f64>> = (0..cfg.n_users)
        .map(|_| (0..k).map(|_| std_normal(&mut rng) * lat_scale).collect())
        .collect();
    let item_lat: Vec<Vec<f64>> = (0..cfg.n_items)
        .map(|_| (0..k).map(|_| std_normal(&mut rng) * lat_scale).collect())
        .collect();
    let user_bias: Vec<f64> = (0..cfg.n_users).map(|_| std_normal(&mut rng) * 0.3).collect();
    let item_bias: Vec<f64> = (0..cfg.n_items).map(|_| std_normal(&mut rng) * 0.3).collect();
    const GLOBAL_MEAN: f64 = 3.5;

    let mut per_user = Vec::with_capacity(cfg.n_users);
    for u in 0..cfg.n_users {
        let pref = preference_cdf(&mut rng, cfg.n_clusters, 1.2);
        let len = rng.gen_range(cfg.min_len..=cfg.max_len);
        let times = timestamps(&mut rng, len);
        let mut seq: Vec<Event> = Vec::with_capacity(len);
        // Category "streaks": users rate within a category for a few items —
        // this is what gives the drift term variance to express.
        let mut streak_cluster = sample_cdf(&mut rng, &pref);
        let mut streak_left = rng.gen_range(1..=4usize);
        for &t in &times {
            if streak_left == 0 {
                streak_cluster = sample_cdf(&mut rng, &pref);
                streak_left = rng.gen_range(1..=4usize);
            }
            streak_left -= 1;
            let item = members[streak_cluster][sample_cdf(&mut rng, &zipfs[streak_cluster])];
            let dot: f64 =
                user_lat[u].iter().zip(&item_lat[item as usize]).map(|(&a, &b)| a * b).sum();
            let drift = cfg.drift_weight
                * affinity(&seq, &item_cluster, item_cluster[item as usize], cfg.affinity_window);
            let noisy = GLOBAL_MEAN
                + user_bias[u]
                + item_bias[item as usize]
                + dot
                + drift
                + std_normal(&mut rng) * cfg.noise_std;
            let rating = noisy.clamp(1.0, 5.0) as f32;
            seq.push(Event { item, time: t, rating });
        }
        per_user.push(seq);
    }

    let ds = Dataset {
        name: cfg.name.clone(),
        n_users: cfg.n_users,
        n_items: cfg.n_items,
        item_cluster,
        per_user,
    };
    ds.validate(3);
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RatingConfig {
        RatingConfig {
            name: "t".into(),
            n_users: 40,
            n_items: 80,
            n_clusters: 8,
            latent_dim: 4,
            min_len: 6,
            max_len: 12,
            drift_weight: 1.0,
            affinity_window: 4,
            noise_std: 0.2,
            zipf_s: 1.0,
            seed: 11,
        }
    }

    #[test]
    fn ratings_live_in_range_and_vary() {
        let ds = generate(&small()).unwrap();
        let mut min = f32::MAX;
        let mut max = f32::MIN;
        for seq in &ds.per_user {
            for e in seq {
                assert!((1.0..=5.0).contains(&e.rating));
                min = min.min(e.rating);
                max = max.max(e.rating);
            }
        }
        assert!(max - min > 1.0, "ratings barely vary ({min}..{max})");
    }

    #[test]
    fn drift_term_is_detectable() {
        // Ratings following same-cluster streaks should exceed ratings after
        // different-cluster histories on average.
        let ds = generate(&small()).unwrap();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for seq in &ds.per_user {
            for i in 1..seq.len() {
                let hist = &seq[..i];
                let a = affinity(hist, &ds.item_cluster, ds.item_cluster[seq[i].item as usize], 4);
                if a > 0.2 {
                    same.push(seq[i].rating);
                } else if a < -0.2 {
                    diff.push(seq[i].rating);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(!same.is_empty() && !diff.is_empty());
        assert!(
            mean(&same) > mean(&diff) + 0.3,
            "drift invisible: same {} vs diff {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(&small()).unwrap();
        let b = generate(&small()).unwrap();
        assert_eq!(a.per_user, b.per_user);
    }

    #[test]
    fn presets_validate() {
        assert!(RatingConfig::beauty(Scale::Small).validate().is_ok());
        assert!(RatingConfig::toys(Scale::Small).validate().is_ok());
    }

    #[test]
    fn affinity_centres_at_zero() {
        let ev = |item: u32| Event { item, time: 1, rating: 3.0 };
        let clusters = vec![0u16, 0, 1, 1];
        // empty history → 0
        assert_eq!(affinity(&[], &clusters, 0, 4), 0.0);
        // all same cluster → +0.5
        let h = vec![ev(0), ev(1)];
        assert!((affinity(&h, &clusters, 0, 4) - 0.5).abs() < 1e-9);
        // none matching → −0.5
        assert!((affinity(&h, &clusters, 1, 4) + 0.5).abs() < 1e-9);
    }
}
