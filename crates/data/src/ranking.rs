//! Synthetic POI check-in generator (stand-in for Gowalla / Foursquare).
//!
//! ## Why this preserves the paper's phenomenon
//!
//! Next-POI choice in check-in data mixes three signals (paper §VI-B and the
//! interest-drift literature it cites \[35\]):
//!
//! 1. **drifting preference** — the user's current cluster taste, which
//!    changes over time (`drift_every`), so the *recent window* of check-ins
//!    predicts the next one far better than the user id alone;
//! 2. **recent persistence** — with probability `p_recent` the next POI's
//!    cluster repeats the cluster of one of the last three check-ins ("users
//!    tend to choose the next POI close to their current check-in
//!    location");
//! 3. **order-2 transitions** — with probability `p_transition` the next
//!    cluster is a deterministic function of the previous *two* clusters
//!    (the computer → mouse ⇒ keyboard example of §I).
//!
//! Consequences, mirroring Table II: set-category FMs can exploit (1) only
//! through the user id and lose the recency information in (2); TFM sees the
//! last POI only — part of (2), none of (3); models that read the whole
//! recent window (SeqFM's cross/dynamic views, SASRec) recover (1) and (2)
//! and approximate (3). The Gowalla preset is denser (longer sequences) than
//! Foursquare, which reproduces SASRec's relative weakness under sparsity
//! (paper §VI-A).

use crate::common::{Dataset, Event};
use crate::genutil::{
    assign_clusters, cluster_members, preference_cdf, sample_cdf, timestamps, validate_common,
    validate_prob, zipf_cdf, ConfigError,
};
use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the check-in generator.
#[derive(Clone, Debug)]
pub struct RankingConfig {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of POIs.
    pub n_items: usize,
    /// Number of POI clusters (neighbourhoods).
    pub n_clusters: usize,
    /// Minimum check-ins per user (≥ 3; paper filters users below 10).
    pub min_len: usize,
    /// Maximum check-ins per user.
    pub max_len: usize,
    /// Probability of an order-2 deterministic cluster transition.
    pub p_transition: f64,
    /// Probability of repeating the cluster of one of the last 3 check-ins.
    pub p_recent: f64,
    /// Expected check-ins between preference re-draws (interest drift).
    pub drift_every: usize,
    /// Zipf exponent of within-cluster POI popularity.
    pub zipf_s: f64,
    /// Peakedness of user cluster preferences.
    pub pref_sharpness: f64,
    /// RNG seed (dataset is fully determined by the config).
    pub seed: u64,
}

impl RankingConfig {
    /// Gowalla-like preset: denser check-in histories.
    pub fn gowalla(scale: Scale) -> Self {
        let f = scale.factor();
        RankingConfig {
            name: "gowalla-sim".into(),
            n_users: 120 * f,
            n_items: 300 * f,
            n_clusters: 24,
            min_len: 16,
            max_len: 48,
            p_transition: 0.15,
            p_recent: 0.40,
            drift_every: 12,
            zipf_s: 1.05,
            pref_sharpness: 1.5,
            seed: 0x60_AA_11,
        }
    }

    /// Foursquare-like preset: sparser histories, more POIs per user.
    pub fn foursquare(scale: Scale) -> Self {
        let f = scale.factor();
        RankingConfig {
            name: "foursquare-sim".into(),
            n_users: 110 * f,
            n_items: 360 * f,
            n_clusters: 30,
            min_len: 10,
            max_len: 24,
            p_transition: 0.12,
            p_recent: 0.35,
            drift_every: 10,
            zipf_s: 1.1,
            pref_sharpness: 1.4,
            seed: 0x45_0F_22,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_common(self.n_users, self.n_items, self.n_clusters, self.min_len, self.max_len)?;
        validate_prob("p_transition", self.p_transition)?;
        validate_prob("p_recent", self.p_recent)?;
        validate_prob("p_transition + p_recent", self.p_transition + self.p_recent)?;
        if self.drift_every == 0 {
            return Err(ConfigError::Empty);
        }
        Ok(())
    }
}

/// Deterministic order-2 cluster transition table: the "rule" that makes the
/// data predictable from two steps of context (e.g. computer → mouse ⇒
/// keyboard). Mixing both predecessors guarantees the map is *not* a function
/// of the last cluster alone.
fn transition(c1: usize, c2: usize, n_clusters: usize, salt: u64) -> usize {
    let h = (c1 as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add((c2 as u64).wrapping_mul(0x85EB_CA6B))
        .wrapping_add(salt);
    (h % n_clusters as u64) as usize
}

/// Generates a check-in dataset.
///
/// # Errors
/// Returns [`ConfigError`] for invalid configurations.
pub fn generate(cfg: &RankingConfig) -> Result<Dataset, ConfigError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let item_cluster = assign_clusters(&mut rng, cfg.n_items, cfg.n_clusters);
    let members = cluster_members(&item_cluster, cfg.n_clusters);
    let zipfs: Vec<Vec<f64>> = members.iter().map(|m| zipf_cdf(m.len(), cfg.zipf_s)).collect();
    let salt = cfg.seed ^ 0xD1CE;

    let mut per_user = Vec::with_capacity(cfg.n_users);
    for _ in 0..cfg.n_users {
        let mut pref = preference_cdf(&mut rng, cfg.n_clusters, cfg.pref_sharpness);
        let len = rng.gen_range(cfg.min_len..=cfg.max_len);
        let times = timestamps(&mut rng, len);
        let mut seq: Vec<Event> = Vec::with_capacity(len);
        let mut recent: Vec<usize> = Vec::with_capacity(3);
        let drift_prob = 1.0 / cfg.drift_every as f64;
        for (i, &t) in times.iter().enumerate() {
            if rng.gen::<f64>() < drift_prob {
                pref = preference_cdf(&mut rng, cfg.n_clusters, cfg.pref_sharpness);
            }
            let r: f64 = rng.gen();
            let c = if i >= 2 && r < cfg.p_transition {
                transition(recent[recent.len() - 2], recent[recent.len() - 1], cfg.n_clusters, salt)
            } else if i >= 1 && r < cfg.p_transition + cfg.p_recent {
                recent[rng.gen_range(0..recent.len())]
            } else {
                sample_cdf(&mut rng, &pref)
            };
            let item = members[c][sample_cdf(&mut rng, &zipfs[c])];
            seq.push(Event { item, time: t, rating: 1.0 });
            if recent.len() == 3 {
                recent.remove(0);
            }
            recent.push(c);
        }
        per_user.push(seq);
    }

    let ds = Dataset {
        name: cfg.name.clone(),
        n_users: cfg.n_users,
        n_items: cfg.n_items,
        item_cluster,
        per_user,
    };
    ds.validate(cfg.min_len.min(3));
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RankingConfig {
        RankingConfig {
            name: "t".into(),
            n_users: 30,
            n_items: 60,
            n_clusters: 6,
            min_len: 8,
            max_len: 16,
            p_transition: 0.2,
            p_recent: 0.5,
            drift_every: 8,
            zipf_s: 1.1,
            pref_sharpness: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small()).unwrap();
        let b = generate(&small()).unwrap();
        assert_eq!(a.per_user, b.per_user);
    }

    #[test]
    fn lengths_respect_bounds() {
        let ds = generate(&small()).unwrap();
        for seq in &ds.per_user {
            assert!(seq.len() >= 8 && seq.len() <= 16);
        }
    }

    #[test]
    fn sequences_carry_recent_window_signal() {
        // The next check-in's cluster should appear among the previous three
        // clusters far more often than chance (the recent-persistence +
        // transition mixture guarantees it).
        let cfg = small();
        let ds = generate(&cfg).unwrap();
        let mut hits = 0usize;
        let mut total = 0usize;
        for seq in &ds.per_user {
            for i in 3..seq.len() {
                let next = ds.item_cluster[seq[i].item as usize];
                let window: Vec<u16> =
                    seq[i - 3..i].iter().map(|e| ds.item_cluster[e.item as usize]).collect();
                if window.contains(&next) {
                    hits += 1;
                }
                total += 1;
            }
        }
        let rate = hits as f64 / total as f64;
        // chance level with 6 clusters and a 3-window is ≈ 1-(5/6)³ ≈ 0.42
        assert!(rate > 0.6, "recent-window hit rate only {rate:.3}");
    }

    #[test]
    fn order2_transitions_present_at_configured_rate() {
        // Deterministic transitions should fire measurably above chance.
        let cfg = small();
        let ds = generate(&cfg).unwrap();
        let salt = cfg.seed ^ 0xD1CE;
        let mut hits = 0usize;
        let mut total = 0usize;
        for seq in &ds.per_user {
            for w in seq.windows(3) {
                let c1 = ds.item_cluster[w[0].item as usize] as usize;
                let c2 = ds.item_cluster[w[1].item as usize] as usize;
                let c3 = ds.item_cluster[w[2].item as usize] as usize;
                if transition(c1, c2, cfg.n_clusters, salt) == c3 {
                    hits += 1;
                }
                total += 1;
            }
        }
        let rate = hits as f64 / total as f64;
        assert!(rate > 0.25, "transition hit rate only {rate:.3} (chance ≈ 0.17)");
    }

    #[test]
    fn transition_depends_on_both_predecessors() {
        // If it only used the last cluster, T(a, c) == T(b, c) for all a, b.
        let n = 16;
        let mut differs = false;
        for c in 0..n {
            if transition(0, c, n, 1) != transition(1, c, n, 1) {
                differs = true;
                break;
            }
        }
        assert!(differs, "transition ignores the second-to-last cluster");
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let ds = generate(&small()).unwrap();
        let mut counts = vec![0usize; ds.n_items];
        for seq in &ds.per_user {
            for e in seq {
                counts[e.item as usize] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top_decile: usize = counts[..ds.n_items / 10].iter().sum();
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "top-10% items only cover {top_decile}/{total} events"
        );
    }

    #[test]
    fn presets_validate() {
        assert!(RankingConfig::gowalla(Scale::Small).validate().is_ok());
        assert!(RankingConfig::foursquare(Scale::Small).validate().is_ok());
        assert!(RankingConfig::gowalla(Scale::Paper).validate().is_ok());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = small();
        cfg.p_transition = 1.7;
        assert!(matches!(generate(&cfg), Err(ConfigError::BadProbability { .. })));
        let mut cfg = small();
        cfg.p_transition = 0.6;
        cfg.p_recent = 0.6; // sum > 1
        assert!(matches!(generate(&cfg), Err(ConfigError::BadProbability { .. })));
        let mut cfg = small();
        cfg.n_clusters = 100;
        assert!(matches!(generate(&cfg), Err(ConfigError::TooFewItems { .. })));
    }
}
