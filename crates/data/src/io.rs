//! Real-dataset import/export.
//!
//! The workspace ships synthetic generators, but downstream users will want
//! to run on the actual public datasets (Gowalla check-ins, Amazon ratings,
//! …). This module reads the common interchange format
//!
//! ```text
//! user_id <TAB> item_id <TAB> timestamp [<TAB> rating]
//! ```
//!
//! with arbitrary string ids (remapped to dense indices), applies the
//! paper's §V-A preprocessing — *"filter out inactive users with less than
//! 10 interacted objects and unpopular objects visited by less than 10
//! users"* — and produces a [`Dataset`] ready for [`crate::LeaveOneOut`].

use crate::common::{Dataset, Event};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors raised while parsing an interaction TSV.
#[derive(Debug)]
pub enum IoError {
    /// Line did not have 3 or 4 tab-separated fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// Timestamp or rating failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Field description.
        what: &'static str,
    },
    /// Nothing survived filtering.
    Empty,
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadFieldCount { line, found } => {
                write!(f, "line {line}: expected 3 or 4 tab-separated fields, found {found}")
            }
            Self::BadNumber { line, what } => write!(f, "line {line}: invalid {what}"),
            Self::Empty => write!(f, "no interactions survived filtering"),
            Self::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Import options.
#[derive(Clone, Debug)]
pub struct ImportOptions {
    /// Dataset name.
    pub name: String,
    /// Drop users with fewer interactions than this (paper: 10).
    pub min_user_events: usize,
    /// Drop items with fewer interactions than this (paper: 10).
    pub min_item_events: usize,
}

impl Default for ImportOptions {
    fn default() -> Self {
        ImportOptions { name: "imported".into(), min_user_events: 10, min_item_events: 10 }
    }
}

/// Parses an interaction TSV into a [`Dataset`].
///
/// * ids are arbitrary strings, remapped to dense indices in first-seen
///   order (after filtering);
/// * events are sorted chronologically per user; equal timestamps are
///   disambiguated by input order (strictly increasing times are enforced by
///   minimal +1 bumps, preserving order);
/// * missing ratings default to 1.0 (implicit feedback);
/// * lines starting with `#` and blank lines are skipped.
///
/// # Errors
/// Returns [`IoError`] on malformed lines, IO failures, or when filtering
/// leaves no data.
pub fn read_tsv<R: BufRead>(reader: R, opts: &ImportOptions) -> Result<Dataset, IoError> {
    let mut raw: Vec<(String, String, i64, f32)> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 && fields.len() != 4 {
            return Err(IoError::BadFieldCount { line: i + 1, found: fields.len() });
        }
        let time: i64 = fields[2]
            .trim()
            .parse()
            .map_err(|_| IoError::BadNumber { line: i + 1, what: "timestamp" })?;
        let rating: f32 = if fields.len() == 4 {
            fields[3]
                .trim()
                .parse()
                .map_err(|_| IoError::BadNumber { line: i + 1, what: "rating" })?
        } else {
            1.0
        };
        raw.push((fields[0].to_string(), fields[1].to_string(), time, rating));
    }

    // paper §V-A filtering: unpopular items first, then inactive users
    let mut item_counts: HashMap<&str, usize> = HashMap::new();
    for (_, item, _, _) in &raw {
        *item_counts.entry(item).or_default() += 1;
    }
    let keep_item: HashMap<String, bool> =
        item_counts.iter().map(|(k, &v)| (k.to_string(), v >= opts.min_item_events)).collect();
    let mut user_counts: HashMap<&str, usize> = HashMap::new();
    for (user, item, _, _) in &raw {
        if keep_item[item.as_str()] {
            *user_counts.entry(user).or_default() += 1;
        }
    }

    let mut user_ids: HashMap<String, u32> = HashMap::new();
    let mut item_ids: HashMap<String, u32> = HashMap::new();
    let mut per_user_raw: Vec<Vec<(i64, usize, u32, f32)>> = Vec::new(); // (time, input order, item, rating)
    for (order, (user, item, time, rating)) in raw.iter().enumerate() {
        if !keep_item[item.as_str()]
            || user_counts.get(user.as_str()).copied().unwrap_or(0) < opts.min_user_events
        {
            continue;
        }
        let next_user = user_ids.len() as u32;
        let u = *user_ids.entry(user.clone()).or_insert(next_user);
        let next_item = item_ids.len() as u32;
        let it = *item_ids.entry(item.clone()).or_insert(next_item);
        if per_user_raw.len() <= u as usize {
            per_user_raw.resize_with(u as usize + 1, Vec::new);
        }
        per_user_raw[u as usize].push((*time, order, it, *rating));
    }
    if per_user_raw.is_empty() {
        return Err(IoError::Empty);
    }

    let per_user: Vec<Vec<Event>> = per_user_raw
        .into_iter()
        .map(|mut seq| {
            seq.sort_by_key(|&(t, order, _, _)| (t, order));
            let mut last_time: i64 = i64::MIN;
            seq.into_iter()
                .map(|(t, _, item, rating)| {
                    // enforce strictly increasing times, preserving order
                    let t = if t <= last_time { last_time + 1 } else { t };
                    last_time = t;
                    Event { item, time: t as u32, rating }
                })
                .collect()
        })
        .collect();

    let n_items = item_ids.len();
    Ok(Dataset {
        name: opts.name.clone(),
        n_users: per_user.len(),
        n_items,
        item_cluster: vec![0; n_items], // unknown for real data
        per_user,
    })
}

/// Writes a [`Dataset`] in the interchange format (always 4 fields).
///
/// # Errors
/// Propagates IO failures.
pub fn write_tsv<W: Write>(ds: &Dataset, mut writer: W) -> Result<(), IoError> {
    for (u, seq) in ds.per_user.iter().enumerate() {
        for e in seq {
            writeln!(writer, "u{u}\ti{}\t{}\t{}", e.item, e.time, e.rating)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn opts(min_u: usize, min_i: usize) -> ImportOptions {
        ImportOptions { name: "t".into(), min_user_events: min_u, min_item_events: min_i }
    }

    #[test]
    fn parses_and_sorts_chronologically() {
        let tsv = "# comment\n\
                   alice\tpizza\t30\n\
                   alice\tsushi\t10\n\
                   alice\tpasta\t20\t4.5\n\
                   bob\tsushi\t5\n\
                   bob\tpizza\t6\n\
                   bob\tpasta\t7\n";
        let ds = read_tsv(Cursor::new(tsv), &opts(1, 1)).unwrap();
        assert_eq!(ds.n_users, 2);
        assert_eq!(ds.n_items, 3);
        ds.validate(3);
        // alice's events sorted by time: sushi(10), pasta(20), pizza(30)
        let a = &ds.per_user[0];
        assert_eq!(a.len(), 3);
        assert!(a[0].time < a[1].time && a[1].time < a[2].time);
        assert_eq!(a[1].rating, 4.5);
        assert_eq!(a[0].rating, 1.0); // implicit default
    }

    #[test]
    fn equal_timestamps_preserve_input_order() {
        let tsv = "u\ta\t5\nu\tb\t5\nu\tc\t5\n";
        let ds = read_tsv(Cursor::new(tsv), &opts(1, 1)).unwrap();
        ds.validate(3); // strictly increasing after bumping
        let items: Vec<u32> = ds.per_user[0].iter().map(|e| e.item).collect();
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn paper_filtering_drops_unpopular_then_inactive() {
        // item `rare` appears once; user `lurker` interacts twice but one
        // of those is with `rare`, leaving 1 < 2 events → dropped.
        let tsv = "power\tcommon\t1\n\
                   power\tcommon2\t2\n\
                   power\tcommon\t3\n\
                   lurker\trare\t1\n\
                   lurker\tcommon\t2\n\
                   other\tcommon\t1\n\
                   other\tcommon2\t2\n";
        let ds = read_tsv(Cursor::new(tsv), &opts(2, 2)).unwrap();
        // `rare` filtered (1 event); `lurker` then has 1 event < 2 → gone
        assert_eq!(ds.n_users, 2);
        assert_eq!(ds.n_items, 2);
        assert_eq!(ds.n_instances(), 5);
    }

    #[test]
    fn roundtrip_through_write_and_read() {
        let mut cfg = crate::ranking::RankingConfig::gowalla(crate::Scale::Small);
        cfg.n_users = 12;
        cfg.n_items = 40;
        cfg.n_clusters = 4;
        cfg.min_len = 5;
        cfg.max_len = 9;
        let ds = crate::ranking::generate(&cfg).unwrap();
        let mut buf = Vec::new();
        write_tsv(&ds, &mut buf).unwrap();
        let back = read_tsv(Cursor::new(buf), &opts(1, 1)).unwrap();
        assert_eq!(back.n_instances(), ds.n_instances());
        assert_eq!(back.n_users, ds.n_users);
        // per-user sequence lengths survive
        let mut a: Vec<usize> = ds.per_user.iter().map(Vec::len).collect();
        let mut b: Vec<usize> = back.per_user.iter().map(Vec::len).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn reports_malformed_lines() {
        let e = read_tsv(Cursor::new("just-one-field\n"), &opts(1, 1)).unwrap_err();
        assert!(matches!(e, IoError::BadFieldCount { line: 1, found: 1 }));
        let e = read_tsv(Cursor::new("u\ti\tnot-a-number\n"), &opts(1, 1)).unwrap_err();
        assert!(matches!(e, IoError::BadNumber { what: "timestamp", .. }));
        let e = read_tsv(Cursor::new("u\ti\t3\tNaR\n"), &opts(1, 1)).unwrap_err();
        assert!(matches!(e, IoError::BadNumber { what: "rating", .. }));
    }

    #[test]
    fn empty_after_filtering_is_an_error() {
        let e = read_tsv(Cursor::new("u\ti\t1\n"), &opts(10, 10)).unwrap_err();
        assert!(matches!(e, IoError::Empty));
    }
}
