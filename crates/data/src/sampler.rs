//! Negative sampling.
//!
//! Ranking training draws corrupted items `v⁻` the user never interacted
//! with (paper §IV-A); CTR training draws 5 negatives per positive (§IV-D);
//! ranking evaluation mixes the ground truth with `J` sampled negatives
//! (§V-C).

use rand::Rng;
use std::collections::HashSet;

/// Uniform negative sampler with per-user exclusion sets.
pub struct NegativeSampler {
    n_items: usize,
    seen: Vec<HashSet<u32>>,
}

impl NegativeSampler {
    /// Builds the sampler from per-user seen-item lists.
    ///
    /// # Panics
    /// Panics if any user has seen every item (no negatives exist).
    pub fn new(n_items: usize, seen_per_user: Vec<Vec<u32>>) -> Self {
        let seen: Vec<HashSet<u32>> =
            seen_per_user.into_iter().map(|v| v.into_iter().collect()).collect();
        for (u, s) in seen.iter().enumerate() {
            assert!(
                s.len() < n_items,
                "user {u} has interacted with all {n_items} items; cannot sample negatives"
            );
        }
        NegativeSampler { n_items, seen }
    }

    /// Number of items in the universe.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// `true` if user `u` has interacted with `item`.
    pub fn is_seen(&self, u: usize, item: u32) -> bool {
        self.seen[u].contains(&item)
    }

    /// Samples one item user `u` has never interacted with.
    pub fn sample<R: Rng + ?Sized>(&self, u: usize, rng: &mut R) -> u32 {
        loop {
            let cand = rng.gen_range(0..self.n_items) as u32;
            if !self.seen[u].contains(&cand) {
                return cand;
            }
        }
    }

    /// Samples `k` *distinct* negatives for user `u` (evaluation candidate
    /// pools; paper uses J = 1000).
    ///
    /// The pool is returned in **draw order**: for a seeded RNG the result
    /// is identical run to run. (It was once collected out of a `HashSet`,
    /// whose random per-instance hash state shuffled the order on every
    /// call — breaking eval reproducibility even under a fixed seed.)
    ///
    /// # Panics
    /// Panics if fewer than `k` unseen items exist.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, u: usize, k: usize, rng: &mut R) -> Vec<u32> {
        let unseen = self.n_items - self.seen[u].len();
        assert!(unseen >= k, "user {u}: requested {k} negatives but only {unseen} unseen items");
        let mut out = Vec::with_capacity(k);
        let mut picked = HashSet::with_capacity(k);
        while out.len() < k {
            let cand = self.sample(u, rng);
            if picked.insert(cand) {
                out.push(cand);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_samples_seen_items() {
        let sampler = NegativeSampler::new(10, vec![vec![0, 1, 2, 3, 4]]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sampler.sample(0, &mut rng);
            assert!(s >= 5, "sampled seen item {s}");
        }
    }

    #[test]
    fn distinct_sampling_is_distinct_and_unseen() {
        let sampler = NegativeSampler::new(20, vec![vec![1, 3, 5]]);
        let mut rng = StdRng::seed_from_u64(2);
        let negs = sampler.sample_distinct(0, 10, &mut rng);
        assert_eq!(negs.len(), 10);
        let set: HashSet<_> = negs.iter().collect();
        assert_eq!(set.len(), 10, "duplicates in distinct sample");
        for &n in &negs {
            assert!(!sampler.is_seen(0, n));
        }
    }

    #[test]
    fn distinct_sampling_is_reproducible_under_a_fixed_seed() {
        // Regression: the pool was once collected out of a `HashSet`, whose
        // per-instance random hash state reordered it on every call — two
        // identically-seeded runs disagreed on candidate-pool order.
        let sampler = NegativeSampler::new(500, vec![vec![0, 1, 2, 3, 4]]);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let a = sampler.sample_distinct(0, 100, &mut rng_a);
        let b = sampler.sample_distinct(0, 100, &mut rng_b);
        assert_eq!(a, b, "identical seeds must produce identical candidate pools, in order");
        // And the order is the draw order, not sorted or hashed.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_ne!(a, sorted, "pool should be in draw order (statistically never sorted)");
    }

    #[test]
    #[should_panic(expected = "cannot sample negatives")]
    fn rejects_saturated_users() {
        let _ = NegativeSampler::new(3, vec![vec![0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn distinct_requires_enough_items() {
        let sampler = NegativeSampler::new(5, vec![vec![0, 1]]);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sampler.sample_distinct(0, 4, &mut rng);
    }
}
