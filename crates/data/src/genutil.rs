//! Shared machinery for the synthetic generators: Zipf popularity,
//! categorical sampling, cluster assignment, preference vectors.

use rand::Rng;

/// Validation errors for generator configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Fewer items than clusters (every cluster needs at least one item).
    TooFewItems {
        /// Configured item count.
        items: usize,
        /// Configured cluster count.
        clusters: usize,
    },
    /// `min_len` must be ≥ 3 (leave-one-out needs 3 events) and ≤ `max_len`.
    BadLengths {
        /// Configured minimum sequence length.
        min: usize,
        /// Configured maximum sequence length.
        max: usize,
    },
    /// A probability-like field is outside `[0, 1]`.
    BadProbability {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Users or items are zero.
    Empty,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewItems { items, clusters } => {
                write!(f, "{items} items cannot fill {clusters} clusters")
            }
            Self::BadLengths { min, max } => {
                write!(f, "invalid sequence lengths: min {min}, max {max} (need 3 ≤ min ≤ max)")
            }
            Self::BadProbability { field, value } => {
                write!(f, "{field} = {value} is not a probability")
            }
            Self::Empty => write!(f, "users and items must be non-zero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates the fields shared by every generator config.
pub fn validate_common(
    n_users: usize,
    n_items: usize,
    n_clusters: usize,
    min_len: usize,
    max_len: usize,
) -> Result<(), ConfigError> {
    if n_users == 0 || n_items == 0 {
        return Err(ConfigError::Empty);
    }
    if n_items < n_clusters || n_clusters == 0 {
        return Err(ConfigError::TooFewItems { items: n_items, clusters: n_clusters });
    }
    if min_len < 3 || min_len > max_len {
        return Err(ConfigError::BadLengths { min: min_len, max: max_len });
    }
    Ok(())
}

/// Checks a probability-like field.
pub fn validate_prob(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if !(0.0..=1.0).contains(&value) || value.is_nan() {
        return Err(ConfigError::BadProbability { field, value });
    }
    Ok(())
}

/// Assigns each of `n_items` to one of `n_clusters` clusters, guaranteeing
/// every cluster is non-empty (first `n_clusters` items seed the clusters,
/// the rest are assigned uniformly at random).
pub fn assign_clusters<R: Rng + ?Sized>(
    rng: &mut R,
    n_items: usize,
    n_clusters: usize,
) -> Vec<u16> {
    let mut cluster = Vec::with_capacity(n_items);
    for i in 0..n_items {
        if i < n_clusters {
            cluster.push(i as u16);
        } else {
            cluster.push(rng.gen_range(0..n_clusters) as u16);
        }
    }
    cluster
}

/// Inverts a cluster assignment into per-cluster item lists.
pub fn cluster_members(cluster: &[u16], n_clusters: usize) -> Vec<Vec<u32>> {
    let mut members = vec![Vec::new(); n_clusters];
    for (i, &c) in cluster.iter().enumerate() {
        members[c as usize].push(i as u32);
    }
    members
}

/// Cumulative distribution over `n` ranks with Zipf weights `1 / rank^s` —
/// web-scale item popularity is famously heavy-tailed, and the paper's
/// datasets (POI check-ins, clicks, Amazon ratings) all follow this shape.
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf over empty support");
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for rank in 1..=n {
        acc += 1.0 / (rank as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Samples an index from a cumulative distribution.
pub fn sample_cdf<R: Rng + ?Sized>(rng: &mut R, cdf: &[f64]) -> usize {
    let u: f64 = rng.gen();
    match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

/// Per-user cluster-preference distribution: softmax of `N(0, sharpness)`
/// scores, returned as a CDF. Larger `sharpness` → more peaked interests.
pub fn preference_cdf<R: Rng + ?Sized>(rng: &mut R, n_clusters: usize, sharpness: f64) -> Vec<f64> {
    let logits: Vec<f64> = (0..n_clusters)
        .map(|_| {
            // Box–Muller standard normal
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sharpness
        })
        .collect();
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Draws strictly-increasing integer timestamps for `n` events.
pub fn timestamps<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u32> {
    let mut t = 0u32;
    (0..n)
        .map(|_| {
            t += rng.gen_range(1..5u32);
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation_catches_all_errors() {
        assert!(validate_common(0, 10, 2, 3, 5).is_err());
        assert!(validate_common(5, 1, 2, 3, 5).is_err());
        assert!(validate_common(5, 10, 2, 2, 5).is_err());
        assert!(validate_common(5, 10, 2, 6, 5).is_err());
        assert!(validate_common(5, 10, 2, 3, 5).is_ok());
        assert!(validate_prob("p", 1.5).is_err());
        assert!(validate_prob("p", f64::NAN).is_err());
        assert!(validate_prob("p", 0.7).is_ok());
    }

    #[test]
    fn clusters_are_complete_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = assign_clusters(&mut rng, 100, 8);
        assert_eq!(c.len(), 100);
        let members = cluster_members(&c, 8);
        assert!(members.iter().all(|m| !m.is_empty()), "empty cluster");
        assert_eq!(members.iter().map(Vec::len).sum::<usize>(), 100);
    }

    #[test]
    fn zipf_is_monotone_normalised_and_heavy_headed() {
        let cdf = zipf_cdf(100, 1.1);
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        // head rank carries far more mass than a tail rank
        let p0 = cdf[0];
        let p99 = cdf[99] - cdf[98];
        assert!(p0 > 20.0 * p99, "head {p0} vs tail {p99}");
    }

    #[test]
    fn cdf_sampling_matches_distribution_roughly() {
        let cdf = vec![0.5, 0.75, 1.0];
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_cdf(&mut rng, &cdf)] += 1;
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert!((counts[1] as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn preference_cdf_is_valid_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        let cdf = preference_cdf(&mut rng, 16, 1.5);
        assert_eq!(cdf.len(), 16);
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn timestamps_strictly_increase() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = timestamps(&mut rng, 50);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
    }
}
