#![warn(missing_docs)]

//! # seqfm-data
//!
//! Datasets for the SeqFM reproduction: the shared chronological data model,
//! leave-one-out evaluation splits, negative samplers, batch construction,
//! and three synthetic generators standing in for the paper's six public
//! datasets (Gowalla, Foursquare, Trivago, Taobao, Beauty, Toys — see
//! DESIGN.md §1 for the substitution rationale):
//!
//! * [`ranking`] — POI check-ins with **order-2 Markov cluster transitions**;
//! * [`ctr`] — click logs mixing **long-term preference** with **session
//!   intent**;
//! * [`rating`] — explicit ratings = matrix factorisation + **sequential
//!   category drift**.
//!
//! Every generator is a pure function of its config (seeded RNG), so all
//! experiments in this workspace are exactly reproducible.

pub mod common;
pub mod ctr;
pub mod genutil;
pub mod io;
pub mod ranking;
pub mod rating;
pub mod sampler;
pub mod split;

pub use common::{
    build_instance, Batch, BatchError, Dataset, DatasetStats, Event, FeatureLayout, Instance, PAD,
};
pub use genutil::ConfigError;
pub use sampler::NegativeSampler;
pub use split::LeaveOneOut;

/// Dataset scale selector: `Small` runs every experiment in seconds on a
/// laptop CPU; `Paper` multiplies user/item counts by 10× for shape checks
/// closer to the original sizes (the published datasets are larger still —
/// absolute metric values are not expected to match either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly sizes (default everywhere).
    Small,
    /// 10× users/items.
    Paper,
}

impl Scale {
    /// Multiplier applied to user/item counts.
    pub fn factor(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Paper => 10,
        }
    }
}

/// The six dataset presets of the paper's Table I, in paper order.
pub fn all_presets(scale: Scale) -> Vec<Dataset> {
    vec![
        ranking::generate(&ranking::RankingConfig::gowalla(scale)).expect("preset valid"),
        ranking::generate(&ranking::RankingConfig::foursquare(scale)).expect("preset valid"),
        ctr::generate(&ctr::CtrConfig::trivago(scale)).expect("preset valid"),
        ctr::generate(&ctr::CtrConfig::taobao(scale)).expect("preset valid"),
        rating::generate(&rating::RatingConfig::beauty(scale)).expect("preset valid"),
        rating::generate(&rating::RatingConfig::toys(scale)).expect("preset valid"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate_and_validate() {
        let sets = all_presets(Scale::Small);
        assert_eq!(sets.len(), 6);
        for ds in &sets {
            ds.validate(3);
            assert!(ds.n_instances() > 500, "{} too small: {}", ds.name, ds.n_instances());
        }
        // names match the paper's dataset order
        let names: Vec<&str> = sets.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "gowalla-sim",
                "foursquare-sim",
                "trivago-sim",
                "taobao-sim",
                "beauty-sim",
                "toys-sim"
            ]
        );
    }

    #[test]
    fn scale_factor() {
        assert_eq!(Scale::Small.factor(), 1);
        assert_eq!(Scale::Paper.factor(), 10);
    }
}
