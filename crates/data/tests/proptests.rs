//! Property-based tests of the dataset generators and protocol machinery
//! under randomly drawn (valid) configurations.

use proptest::prelude::*;
use seqfm_data::{build_instance, FeatureLayout, LeaveOneOut, NegativeSampler, PAD};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any valid ranking config yields a dataset satisfying all invariants,
    /// and its leave-one-out split preserves event counts.
    #[test]
    fn ranking_generator_invariants(
        n_users in 5usize..30,
        n_items in 30usize..80,
        n_clusters in 2usize..8,
        p_trans in 0.0f64..0.4,
        p_recent in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let cfg = seqfm_data::ranking::RankingConfig {
            name: "prop".into(),
            n_users,
            n_items,
            n_clusters,
            min_len: 5,
            max_len: 12,
            p_transition: p_trans,
            p_recent,
            drift_every: 6,
            zipf_s: 1.0,
            pref_sharpness: 1.0,
            seed,
        };
        let ds = seqfm_data::ranking::generate(&cfg).expect("valid config");
        ds.validate(5);
        let total = ds.n_instances();
        let split = LeaveOneOut::split(&ds);
        let split_total: usize = split.train.iter().map(Vec::len).sum::<usize>()
            + split.valid.len()
            + split.test.len();
        prop_assert_eq!(total, split_total);
        // causality: every train timestamp precedes the valid and test ones
        for u in 0..n_users {
            for e in &split.train[u] {
                prop_assert!(e.time < split.valid[u].time);
            }
            prop_assert!(split.valid[u].time < split.test[u].time);
        }
    }

    /// CTR and rating generators also uphold invariants for random seeds.
    #[test]
    fn other_generators_invariants(seed in 0u64..500) {
        let mut ctr = seqfm_data::ctr::CtrConfig::trivago(seqfm_data::Scale::Small);
        ctr.n_users = 15;
        ctr.n_items = 50;
        ctr.n_clusters = 5;
        ctr.seed = seed;
        seqfm_data::ctr::generate(&ctr).expect("valid").validate(3);

        let mut rat = seqfm_data::rating::RatingConfig::toys(seqfm_data::Scale::Small);
        rat.n_users = 15;
        rat.n_items = 50;
        rat.n_clusters = 5;
        rat.seed = seed;
        let ds = seqfm_data::rating::generate(&rat).expect("valid");
        ds.validate(3);
        for seq in &ds.per_user {
            for e in seq {
                prop_assert!((1.0..=5.0).contains(&e.rating));
            }
        }
    }

    /// build_instance always produces a fixed-width, front-padded window.
    #[test]
    fn instance_window_invariants(
        hist in proptest::collection::vec(0u32..50, 0..40),
        max_seq in 1usize..30,
    ) {
        let layout = FeatureLayout { n_users: 10, n_items: 50 };
        let inst = build_instance(&layout, 3, 7, &hist, max_seq, 1.0);
        prop_assert_eq!(inst.dyn_idx.len(), max_seq);
        // padding is a strict prefix
        let pad_len = inst.dyn_idx.iter().take_while(|&&i| i == PAD).count();
        prop_assert!(inst.dyn_idx[pad_len..].iter().all(|&i| i != PAD));
        // suffix equals the most recent history
        let take = hist.len().min(max_seq);
        let expected: Vec<i64> = hist[hist.len() - take..].iter().map(|&i| i as i64).collect();
        prop_assert_eq!(&inst.dyn_idx[max_seq - take..], &expected[..]);
    }

    /// The negative sampler never emits a seen item, for arbitrary seen sets.
    #[test]
    fn sampler_never_emits_seen(
        seen in proptest::collection::btree_set(0u32..40, 0..30),
        seed in 0u64..100,
    ) {
        use rand::SeedableRng;
        let seen: Vec<u32> = seen.into_iter().collect();
        let sampler = NegativeSampler::new(50, vec![seen.clone()]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let s = sampler.sample(0, &mut rng);
            prop_assert!(!seen.contains(&s));
        }
    }
}
