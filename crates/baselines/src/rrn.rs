//! RRN — Recurrent Recommender Network (Wu et al., WSDM 2017). The paper's
//! additional regression baseline (Table IV).
//!
//! A GRU consumes the user's rated-item sequence; the final hidden state is
//! the user's *dynamic* state, combined with stationary user/item latent
//! factors and biases — the autoregressive rating model of the original
//! paper, with the LSTM swapped for a GRU (equivalent gating family, fewer
//! parameters).

use crate::util::{candidate_items, user_ids};
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::{Embedding, GruCell};
use seqfm_tensor::{Shape, Tensor};

/// RRN.
pub struct Rrn {
    layout: FeatureLayout,
    item_emb: Embedding,
    user_emb: Embedding,
    gru: GruCell,
    user_bias: Embedding,
    item_bias: Embedding,
    global_bias: seqfm_autograd::ParamId,
    d: usize,
}

impl Rrn {
    /// Builds an RRN with embedding/hidden width `d`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
    ) -> Self {
        Rrn {
            layout: *layout,
            item_emb: Embedding::new(ps, rng, "rrn.item", layout.n_items, d),
            user_emb: Embedding::new(ps, rng, "rrn.user", layout.n_users, d),
            gru: GruCell::new(ps, rng, "rrn.gru", d, d),
            user_bias: Embedding::zeros(ps, "rrn.user_bias", layout.n_users, 1),
            item_bias: Embedding::zeros(ps, "rrn.item_bias", layout.n_items, 1),
            global_bias: ps.add_dense("rrn.global", Tensor::zeros(Shape::d1(1))),
            d,
        }
    }
}

impl SeqModel for Rrn {
    fn name(&self) -> &str {
        "RRN"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        _training: bool,
        _rng: &mut StdRng,
    ) -> Var {
        let (b, n, d) = (batch.len, batch.n_dynamic, self.d);
        let e_hist = self.item_emb.lookup(g, ps, &batch.dyn_idx, b, n); // [b,n,d]

        // unroll the GRU over the (left-padded) sequence; padded steps feed
        // zero vectors, which perturb the state far less than real items
        let mut h = g.input(Tensor::zeros(Shape::d2(b, d)));
        for t in 0..n {
            let x_t = g.slice_axis1(e_hist, t, 1);
            let x_t = g.reshape(x_t, Shape::d2(b, d));
            h = self.gru.step(g, ps, x_t, h);
        }
        let users = user_ids(batch);
        let cands = candidate_items(batch, &self.layout);
        let e_user = self.user_emb.lookup(g, ps, &users, b, 1);
        let e_user = g.reshape(e_user, Shape::d2(b, d));
        let e_cand = self.item_emb.lookup(g, ps, &cands, b, 1);
        let e_cand = g.reshape(e_cand, Shape::d2(b, d));

        // ŷ = ⟨h_dyn, e_c⟩ + ⟨p_u, e_c⟩ + b_u + b_i + b₀
        let dyn_term = g.row_dot(h, e_cand);
        let stat_term = g.row_dot(e_user, e_cand);
        let mut out = g.add(dyn_term, stat_term);
        let bu = self.user_bias.lookup(g, ps, &users, b, 1);
        let bu = g.reshape(bu, Shape::d1(b));
        let bi = self.item_bias.lookup(g, ps, &cands, b, 1);
        let bi = g.reshape(bi, Shape::d1(b));
        out = g.add(out, bu);
        out = g.add(out, bi);
        let out2 = g.reshape(out, Shape::d2(b, 1));
        let gb = g.param(ps, self.global_bias);
        let out2 = g.add_bias(out2, gb);
        g.reshape(out2, Shape::d1(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (Rrn, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let m = Rrn::new(&mut ps, &mut rng, &layout(), 8);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn rrn_is_order_sensitive() {
        let (m, ps) = build();
        let b = batch();
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &reverse_history(&b));
        assert!((a[0] - c[0]).abs() > 1e-6, "GRU ignored item order");
    }

    #[test]
    fn recurrent_state_carries_history() {
        // Different histories, same user/candidate → different scores.
        let (m, ps) = build();
        let l = layout();
        let h1 = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            0,
            5,
            &[1, 2],
            MAX_SEQ,
            3.0,
        )])
        .expect("valid batch");
        let h2 = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            0,
            5,
            &[7, 8],
            MAX_SEQ,
            3.0,
        )])
        .expect("valid batch");
        let a = logits(&m, &ps, &h1)[0];
        let b = logits(&m, &ps, &h2)[0];
        assert!((a - b).abs() > 1e-6);
    }
}
