//! DIN — Deep Interest Network (Zhou et al., KDD 2018). The paper's
//! additional CTR baseline (Table III).
//!
//! For each candidate, an *activation unit* scores every history item from
//! `[e_hist ; e_cand ; e_hist ⊙ e_cand]`, the normalised scores pool the
//! history into a candidate-conditioned interest vector, and an MLP over
//! `[user ; interest ; candidate ; interest ⊙ candidate]` emits the logit.
//! DIN attends over the history as a *set* — it has no positional signal,
//! which is why SeqFM's directional attention beats it on sequential data.

use crate::util::{candidate_items, user_ids};
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::{Embedding, Mlp};
use seqfm_tensor::Shape;

/// DIN.
pub struct Din {
    layout: FeatureLayout,
    user_emb: Embedding,
    item_emb: Embedding,
    activation: Mlp,
    head: Mlp,
    d: usize,
    dropout: f32,
}

impl Din {
    /// Builds a DIN with embedding width `d`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
        dropout: f32,
    ) -> Self {
        Din {
            layout: *layout,
            user_emb: Embedding::new(ps, rng, "din.user", layout.n_users, d),
            item_emb: Embedding::new(ps, rng, "din.item", layout.n_items, d),
            activation: Mlp::new(ps, rng, "din.act", &[3 * d, d, 1]),
            head: Mlp::new(ps, rng, "din.head", &[4 * d, 2 * d, 1]),
            d,
            dropout,
        }
    }
}

impl SeqModel for Din {
    fn name(&self) -> &str {
        "DIN"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let (b, n, d) = (batch.len, batch.n_dynamic, self.d);
        let users = user_ids(batch);
        let cands = candidate_items(batch, &self.layout);
        let e_hist = self.item_emb.lookup(g, ps, &batch.dyn_idx, b, n); // [b,n,d]
        let e_user = self.user_emb.lookup(g, ps, &users, b, 1);
        let e_user = g.reshape(e_user, Shape::d2(b, d));
        let e_cand = self.item_emb.lookup(g, ps, &cands, b, 1);
        let e_cand = g.reshape(e_cand, Shape::d2(b, d));

        // activation unit over every (history, candidate) pair
        let cand_rep = g.expand_axis1(e_cand, n); // [b,n,d]
        let prod = g.mul(e_hist, cand_rep);
        let hist_flat = g.reshape(e_hist, Shape::d2(b * n, d));
        let cand_flat = g.reshape(cand_rep, Shape::d2(b * n, d));
        let prod_flat = g.reshape(prod, Shape::d2(b * n, d));
        let act_in = g.concat_cols(&[hist_flat, cand_flat, prod_flat]); // [b·n, 3d]
        let scores = self.activation.forward(g, ps, act_in, 0.0, training, rng); // [b·n, 1]
        let scores = g.reshape(scores, Shape::d2(b, n));
        let weights = g.softmax(scores); // [b, n]
        let w3 = g.reshape(weights, Shape::d3(b, 1, n));
        let interest = g.bmm(w3, e_hist); // [b, 1, d]
        let interest = g.reshape(interest, Shape::d2(b, d));

        // prediction head
        let cross = g.mul(interest, e_cand);
        let head_in = g.concat_cols(&[e_user, interest, e_cand, cross]); // [b, 4d]
        let out = self.head.forward(g, ps, head_in, self.dropout, training, rng); // [b, 1]
        g.reshape(out, Shape::d1(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (Din, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let m = Din::new(&mut ps, &mut rng, &layout(), 8, 0.1);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn din_attends_over_a_set() {
        // No positional encoding → order-blind (its documented limitation).
        let (m, ps) = build();
        let b = batch();
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &reverse_history(&b));
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn interest_is_candidate_conditioned() {
        // The same history must produce different interest weights for
        // different candidates: score differences should not be explained by
        // the candidate embedding alone. We check that swapping candidates
        // changes the logit.
        let (m, ps) = build();
        let l = layout();
        let b = batch();
        let swapped = b.with_candidates(&l, &[8, 8, 8]);
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &swapped);
        assert!(a.iter().zip(&c).any(|(x, y)| (x - y).abs() > 1e-6));
    }
}
