//! Wide&Deep (Cheng et al., DLRS 2016).
//!
//! Wide part: the first-order linear terms over all sparse features.
//! Deep part: an MLP over the concatenation of the user embedding, the
//! candidate embedding, and the mean-pooled history embedding (the standard
//! dense representation of set-category features).

use crate::util::FmBase;
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::Mlp;
use seqfm_tensor::Shape;

/// Wide&Deep.
pub struct WideDeep {
    base: FmBase,
    mlp: Mlp,
    dropout: f32,
}

impl WideDeep {
    /// Builds a Wide&Deep model; the deep tower is `[3d → 2d → d → 1]`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
        dropout: f32,
    ) -> Self {
        let base = FmBase::new(ps, rng, "widedeep", layout, d);
        let mlp = Mlp::new(ps, rng, "widedeep.mlp", &[3 * d, 2 * d, d, 1]);
        WideDeep { base, mlp, dropout }
    }
}

impl SeqModel for WideDeep {
    fn name(&self) -> &str {
        "Wide&Deep"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let (e_s, e_d) = self.base.embeddings(g, ps, batch);
        // static block is [user; candidate]: flatten to [b, n°·d]
        let flat_s = g.reshape(e_s, Shape::d2(batch.len, batch.n_static * self.base.d));
        let hist = g.mean_axis1(e_d); // [b, d]
        let dense = g.concat_cols(&[flat_s, hist]); // [b, (n°+1)·d] = [b, 3d]
        let deep = self.mlp.forward(g, ps, dense, self.dropout, training, rng);
        let wide = self.base.linear_terms(g, ps, batch);
        let out = g.add(deep, wide);
        g.reshape(out, Shape::d1(batch.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (WideDeep, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let m = WideDeep::new(&mut ps, &mut rng, &layout(), 8, 0.1);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn order_blind_via_mean_pooling() {
        let (m, ps) = build();
        let b = batch();
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &reverse_history(&b));
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn candidate_changes_score() {
        let (m, ps) = build();
        let l = layout();
        let b = batch();
        let swapped = b.with_candidates(&l, &[9, 9, 9]);
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &swapped);
        assert!(a.iter().zip(&c).any(|(x, y)| (x - y).abs() > 1e-6));
    }
}
