//! TFM — Translation-based Factorization Machine (Pasricha & McAuley,
//! RecSys 2018). The paper's second additional ranking baseline (Table II).
//!
//! Embeds items in a shared metric space and models a user-specific
//! *translation*: the next item should lie near `e_last + t_u`, scored by
//! negative squared Euclidean distance plus biases. As the paper stresses
//! (§I, §VI-A), TFM "models the influence of only the last item" — this
//! implementation is faithfully last-item-only, which is exactly why SeqFM
//! outperforms it on order-2 Markov data.

use crate::util::{candidate_items, last_items, user_ids};
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::Embedding;
use seqfm_tensor::Shape;

/// TFM (TransRec-style translation model).
pub struct Tfm {
    layout: FeatureLayout,
    item_emb: Embedding,
    user_trans: Embedding,
    item_bias: Embedding,
    d: usize,
}

impl Tfm {
    /// Builds a TFM with embedding width `d`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
    ) -> Self {
        Tfm {
            layout: *layout,
            item_emb: Embedding::new(ps, rng, "tfm.item", layout.n_items, d),
            user_trans: Embedding::new(ps, rng, "tfm.trans", layout.n_users, d),
            item_bias: Embedding::zeros(ps, "tfm.item_bias", layout.n_items, 1),
            d,
        }
    }
}

impl SeqModel for Tfm {
    fn name(&self) -> &str {
        "TFM"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        _training: bool,
        _rng: &mut StdRng,
    ) -> Var {
        let b = batch.len;
        let last = last_items(batch);
        let users = user_ids(batch);
        let cands = candidate_items(batch, &self.layout);
        let e_last = self.item_emb.lookup(g, ps, &last, b, 1);
        let e_last = g.reshape(e_last, Shape::d2(b, self.d));
        let t_u = self.user_trans.lookup(g, ps, &users, b, 1);
        let t_u = g.reshape(t_u, Shape::d2(b, self.d));
        let e_c = self.item_emb.lookup(g, ps, &cands, b, 1);
        let e_c = g.reshape(e_c, Shape::d2(b, self.d));

        // score = β_c − ‖e_last + t_u − e_c‖²
        let moved = g.add(e_last, t_u);
        let diff = g.sub(moved, e_c);
        let sq = g.square(diff);
        let dist = g.sum_lastdim(sq); // [b]
        let neg_dist = g.neg(dist);
        let bias = self.item_bias.lookup(g, ps, &cands, b, 1);
        let bias = g.reshape(bias, Shape::d1(b));
        g.add(neg_dist, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (Tfm, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(8);
        let m = Tfm::new(&mut ps, &mut rng, &layout(), 8);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn only_the_last_item_matters() {
        // Changing earlier history items must not move the score; changing
        // the last one must. (This is TFM's defining limitation.)
        let (m, ps) = build();
        let l = layout();
        let base = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            1,
            6,
            &[2, 3, 4],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let early_changed = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            1,
            6,
            &[9, 10, 4],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let last_changed = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            1,
            6,
            &[2, 3, 11],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let a = logits(&m, &ps, &base)[0];
        let b = logits(&m, &ps, &early_changed)[0];
        let c = logits(&m, &ps, &last_changed)[0];
        assert!((a - b).abs() < 1e-6, "early history leaked into TFM score");
        assert!((a - c).abs() > 1e-6, "last item ignored");
    }

    #[test]
    fn translation_is_user_specific() {
        let (m, ps) = build();
        let l = layout();
        let u1 = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            0,
            6,
            &[2],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let u2 = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            3,
            6,
            &[2],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let a = logits(&m, &ps, &u1)[0];
        let b = logits(&m, &ps, &u2)[0];
        assert!((a - b).abs() > 1e-6);
    }
}
