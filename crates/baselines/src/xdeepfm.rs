//! xDeepFM — eXtreme Deep Factorization Machine (Lian et al., KDD 2018).
//! The paper's second additional CTR baseline (Table III).
//!
//! Three towers share field embeddings: (1) the first-order linear part,
//! (2) a plain DNN over the concatenated fields, and (3) the **Compressed
//! Interaction Network** (CIN), which builds explicit vector-wise
//! interactions: `X^k_{h,*} = Σ_{i,j} W^{k}_{h,i,j} (X^{k-1}_{i,*} ⊙ X^0_{j,*})`.
//!
//! Fields here are `[user, candidate, pooled-history]` — the standard field
//! reduction when one field is a variable-length set.

use crate::util::{candidate_items, user_ids, FmBase};
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamId, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::Mlp;
use seqfm_tensor::Shape;

const N_FIELDS: usize = 3;

/// xDeepFM with a two-layer CIN.
pub struct XDeepFm {
    layout: FeatureLayout,
    base: FmBase,
    /// CIN layer weights `W^k ∈ R^{h_k × (h_{k-1}·m)}`.
    cin_weights: Vec<ParamId>,
    cin_widths: Vec<usize>,
    /// Final projection over the concatenated CIN pools.
    cin_head: ParamId,
    dnn: Mlp,
    dropout: f32,
}

impl XDeepFm {
    /// Builds an xDeepFM with CIN widths `[h, h]`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
        cin_width: usize,
        dropout: f32,
    ) -> Self {
        let base = FmBase::new(ps, rng, "xdeepfm", layout, d);
        let widths = vec![cin_width, cin_width];
        let mut cin_weights = Vec::new();
        let mut prev = N_FIELDS;
        for (k, &h) in widths.iter().enumerate() {
            cin_weights.push(ps.add_dense(
                format!("xdeepfm.cin{k}"),
                seqfm_nn::init::xavier_uniform(rng, h, prev * N_FIELDS),
            ));
            prev = h;
        }
        let total: usize = widths.iter().sum();
        let cin_head =
            ps.add_dense("xdeepfm.cin_head", seqfm_nn::init::xavier_uniform(rng, total, 1));
        let dnn = Mlp::new(ps, rng, "xdeepfm.dnn", &[N_FIELDS * d, 2 * d, 1]);
        XDeepFm { layout: *layout, base, cin_weights, cin_widths: widths, cin_head, dnn, dropout }
    }

    /// Pairwise field products `P[b, h_prev·m, d]` between `xk` and the base
    /// field matrix `x0`.
    fn field_products(g: &mut Graph, xk: Var, x0: Var) -> Var {
        let hk = g.value(xk).shape().dim(1);
        let m = g.value(x0).shape().dim(1);
        let mut rep = Vec::with_capacity(hk * m);
        let mut tile = Vec::with_capacity(hk * m);
        for i in 0..hk {
            for j in 0..m {
                rep.push(i);
                tile.push(j);
            }
        }
        let a = g.index_select_axis1(xk, &rep);
        let b = g.index_select_axis1(x0, &tile);
        g.mul(a, b)
    }
}

impl SeqModel for XDeepFm {
    fn name(&self) -> &str {
        "xDeepFM"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let (b, d) = (batch.len, self.base.d);
        let users = user_ids(batch);
        let cands_item_space = candidate_items(batch, &self.layout);
        // field embeddings from the shared FM tables: user and candidate via
        // the static table, history pooled from the dynamic table
        let cand_feats: Vec<i64> =
            cands_item_space.iter().map(|&c| c + self.layout.n_users as i64).collect();
        let e_user = self.base.emb_static.lookup(g, ps, &users, b, 1); // [b,1,d]
        let e_cand = self.base.emb_static.lookup(g, ps, &cand_feats, b, 1);
        let e_hist = self.base.emb_dynamic.lookup(g, ps, &batch.dyn_idx, b, batch.n_dynamic);
        let hist = g.mean_axis1(e_hist); // [b, d]
        let hist3 = g.reshape(hist, Shape::d3(b, 1, d));
        let uc = g.concat_axis1(e_user, e_cand);
        let x0 = g.concat_axis1(uc, hist3); // [b, 3, d]

        // CIN tower
        let mut xk = x0;
        let mut pools: Vec<Var> = Vec::with_capacity(self.cin_widths.len());
        for (wid, _) in self.cin_weights.iter().zip(&self.cin_widths) {
            let prods = Self::field_products(g, xk, x0); // [b, h_prev·m, d]
            let w = g.param(ps, *wid); // [h_k, h_prev·m]
            xk = g.lmatmul(w, prods); // [b, h_k, d]
            pools.push(g.sum_lastdim(xk)); // [b, h_k]
        }
        let cin_cat = g.concat_cols(&pools); // [b, Σh]
        let head = g.param(ps, self.cin_head);
        let cin_out = g.matmul(cin_cat, head); // [b, 1]

        // DNN tower
        let x0_flat = g.reshape(x0, Shape::d2(b, N_FIELDS * d));
        let dnn_out = self.dnn.forward(g, ps, x0_flat, self.dropout, training, rng); // [b, 1]

        // linear tower
        let lin = self.base.linear_terms(g, ps, batch);
        let sum = g.add(cin_out, dnn_out);
        let out = g.add(sum, lin);
        g.reshape(out, Shape::d1(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (XDeepFm, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(10);
        let m = XDeepFm::new(&mut ps, &mut rng, &layout(), 8, 4, 0.1);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn order_blind_via_pooled_field() {
        let (m, ps) = build();
        let b = batch();
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &reverse_history(&b));
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cin_products_are_vector_wise() {
        // field_products on a hand-built tensor: [b=1, m=2, d=2] with itself
        // gives 4 rows of elementwise products.
        let mut g = Graph::new();
        let x =
            g.input(seqfm_tensor::Tensor::from_vec(Shape::d3(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]));
        let p = XDeepFm::field_products(&mut g, x, x);
        assert_eq!(g.value(p).shape(), Shape::d3(1, 4, 2));
        // rows: f0⊙f0, f0⊙f1, f1⊙f0, f1⊙f1
        assert_eq!(g.value(p).data(), &[1.0, 4.0, 3.0, 8.0, 3.0, 8.0, 9.0, 16.0]);
    }
}
