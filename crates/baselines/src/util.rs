//! Shared machinery for the baseline models.

use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_data::{Batch, FeatureLayout, PAD};
use seqfm_nn::Embedding;
use seqfm_tensor::Shape;

/// User index (static feature 0) of every instance in a batch.
pub fn user_ids(batch: &Batch) -> Vec<i64> {
    (0..batch.len).map(|i| batch.static_idx[i * batch.n_static]).collect()
}

/// Candidate item (static feature 1, shifted back into item space).
pub fn candidate_items(batch: &Batch, layout: &FeatureLayout) -> Vec<i64> {
    (0..batch.len)
        .map(|i| batch.static_idx[i * batch.n_static + 1] - layout.n_users as i64)
        .collect()
}

/// The most recent dynamic item per instance ([`PAD`] when the history is
/// empty). Sequences are left-padded, so this is simply the last column.
pub fn last_items(batch: &Batch) -> Vec<i64> {
    (0..batch.len).map(|i| batch.dyn_idx[(i + 1) * batch.n_dynamic - 1]).collect()
}

/// The shared first-order + embedding plumbing of every classic FM variant
/// (plain FM, HOFM, NFM, AFM, Wide&Deep, DeepCross): per-block embedding
/// tables, zero-initialised first-order weights, and a global bias.
pub struct FmBase {
    /// Static-feature embeddings (`m° × d`).
    pub emb_static: Embedding,
    /// Dynamic-feature embeddings (`m˙ × d`).
    pub emb_dynamic: Embedding,
    w_static: Embedding,
    w_dynamic: Embedding,
    w0: seqfm_autograd::ParamId,
    /// Embedding width.
    pub d: usize,
}

impl FmBase {
    /// Allocates tables for `layout` under the `{name}.*` prefix.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        name: &str,
        layout: &FeatureLayout,
        d: usize,
    ) -> Self {
        FmBase {
            emb_static: Embedding::new(
                ps,
                rng,
                &format!("{name}.emb_static"),
                layout.m_static(),
                d,
            ),
            emb_dynamic: Embedding::new(
                ps,
                rng,
                &format!("{name}.emb_dynamic"),
                layout.m_dynamic(),
                d,
            ),
            w_static: Embedding::zeros(ps, &format!("{name}.w_static"), layout.m_static(), 1),
            w_dynamic: Embedding::zeros(ps, &format!("{name}.w_dynamic"), layout.m_dynamic(), 1),
            w0: ps.add_dense(format!("{name}.w0"), seqfm_tensor::Tensor::zeros(Shape::d1(1))),
            d,
        }
    }

    /// Embeds both blocks: `(E° [b,n°,d], E˙ [b,n˙,d])`.
    pub fn embeddings(&self, g: &mut Graph, ps: &ParamStore, batch: &Batch) -> (Var, Var) {
        let e_s = self.emb_static.lookup(g, ps, &batch.static_idx, batch.len, batch.n_static);
        let e_d = self.emb_dynamic.lookup(g, ps, &batch.dyn_idx, batch.len, batch.n_dynamic);
        (e_s, e_d)
    }

    /// First-order terms `w₀ + Σᵢ wᵢ xᵢ` as a `[b, 1]` tensor.
    pub fn linear_terms(&self, g: &mut Graph, ps: &ParamStore, batch: &Batch) -> Var {
        let ws = self.w_static.lookup(g, ps, &batch.static_idx, batch.len, batch.n_static);
        let wd = self.w_dynamic.lookup(g, ps, &batch.dyn_idx, batch.len, batch.n_dynamic);
        let ls = g.sum_axis1(ws);
        let ld = g.sum_axis1(wd);
        let lin = g.add(ls, ld);
        let w0 = g.param(ps, self.w0);
        g.add_bias(lin, w0)
    }

    /// FM bi-interaction vector `½[(Σᵢvᵢ)² − Σᵢvᵢ²]` over **all** non-zero
    /// features of both blocks (`[b, d]`) — the O(n·d) identity behind Eq. 2.
    /// Padding rows embed to zero and vanish from both sums.
    pub fn bi_interaction(&self, g: &mut Graph, ps: &ParamStore, batch: &Batch) -> Var {
        let (e_s, e_d) = self.embeddings(g, ps, batch);
        let s1s = g.sum_axis1(e_s);
        let s1d = g.sum_axis1(e_d);
        let s1 = g.add(s1s, s1d); // Σv
        let sq_s = g.square(e_s);
        let sq_d = g.square(e_d);
        let s2s = g.sum_axis1(sq_s);
        let s2d = g.sum_axis1(sq_d);
        let s2 = g.add(s2s, s2d); // Σv²
        let s1_sq = g.square(s1);
        let diff = g.sub(s1_sq, s2);
        g.scale(diff, 0.5)
    }

    /// Power sums `(Σv, Σv², Σv³)` over all features (`[b,d]` each) for the
    /// order-3 ANOVA kernel of HOFM.
    pub fn power_sums(&self, g: &mut Graph, ps: &ParamStore, batch: &Batch) -> (Var, Var, Var) {
        let (e_s, e_d) = self.embeddings(g, ps, batch);
        let cat = g.concat_axis1(e_s, e_d);
        let s1 = g.sum_axis1(cat);
        let sq = g.square(cat);
        let s2 = g.sum_axis1(sq);
        let cube = g.mul(sq, cat);
        let s3 = g.sum_axis1(cube);
        (s1, s2, s3)
    }
}

/// Number of real (non-padding) history items per instance.
pub fn history_lengths(batch: &Batch) -> Vec<usize> {
    (0..batch.len)
        .map(|i| {
            batch.dyn_idx[i * batch.n_dynamic..(i + 1) * batch.n_dynamic]
                .iter()
                .filter(|&&x| x != PAD)
                .count()
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Helpers used by every baseline's tests.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::{Graph, ParamStore};
    use seqfm_core::SeqModel;
    use seqfm_data::{build_instance, Batch, FeatureLayout};

    pub const MAX_SEQ: usize = 6;

    pub fn layout() -> FeatureLayout {
        FeatureLayout { n_users: 5, n_items: 12 }
    }

    pub fn batch() -> Batch {
        let l = layout();
        Batch::try_from_instances(&[
            build_instance(&l, 0, 3, &[1, 2, 5], MAX_SEQ, 1.0),
            build_instance(&l, 2, 7, &[4], MAX_SEQ, 0.0),
            build_instance(&l, 4, 11, &[0, 1, 2, 3, 4, 5, 6, 7], MAX_SEQ, 3.5),
        ])
        .expect("valid batch")
    }

    /// Forward a model on a batch, returning the logits.
    pub fn logits(model: &dyn SeqModel, ps: &ParamStore, b: &Batch) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new();
        let y = model.forward(&mut g, ps, b, false, &mut rng);
        assert_eq!(g.value(y).numel(), b.len, "{}: wrong logit count", model.name());
        assert!(!g.value(y).has_non_finite(), "{}: non-finite logits", model.name());
        g.value(y).data().to_vec()
    }

    /// Asserts gradients flow into at least `min_params` parameters.
    pub fn check_grad_flow(model: &dyn SeqModel, ps: &mut ParamStore, b: &Batch) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new();
        let y = model.forward(&mut g, ps, b, true, &mut rng);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        g.backward(loss, ps);
        let touched = ps
            .iter()
            .filter(|(id, p)| match p.kind() {
                seqfm_autograd::ParamKind::Dense => p.grad().max_abs() > 0.0,
                seqfm_autograd::ParamKind::SparseRows => !ps.touched_rows(*id).is_empty(),
            })
            .count();
        assert!(
            touched * 2 >= ps.len(),
            "{}: only {touched}/{} params received gradient",
            model.name(),
            ps.len()
        );
        ps.zero_grads();
    }

    /// Permutes the dynamic history of every instance (reversal) while
    /// keeping the set of items fixed.
    pub fn reverse_history(b: &Batch) -> Batch {
        let mut out = b.clone();
        for i in 0..b.len {
            let row = &mut out.dyn_idx[i * b.n_dynamic..(i + 1) * b.n_dynamic];
            // reverse only the non-pad suffix so padding stays on the left
            let start = row.iter().take_while(|&&x| x == seqfm_data::PAD).count();
            row[start..].reverse();
        }
        out
    }
}
