//! Higher-Order Factorization Machine (Blondel et al., NIPS 2016) —
//! the paper's additional regression baseline (Table IV).
//!
//! Order-3 HOFM with shared parameters across orders: the degree-2 ANOVA
//! kernel is the plain FM bi-interaction; the degree-3 kernel uses the
//! Newton–Girard identity
//! `A₃ = (s₁³ − 3·s₁·s₂ + 2·s₃)/6` per latent dimension, where
//! `sₖ = Σᵢ vᵢᵏ` are elementwise power sums over the active features —
//! the "time-efficient kernels with shared parameters" the paper cites.

use crate::util::FmBase;
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_tensor::Shape;

/// Order-3 HOFM.
pub struct Hofm {
    base: FmBase,
}

impl Hofm {
    /// Builds an order-3 HOFM with embedding width `d`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
    ) -> Self {
        Hofm { base: FmBase::new(ps, rng, "hofm", layout, d) }
    }
}

impl SeqModel for Hofm {
    fn name(&self) -> &str {
        "HOFM"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        _training: bool,
        _rng: &mut StdRng,
    ) -> Var {
        let (s1, s2, s3) = self.base.power_sums(g, ps, batch);
        // degree 2: (s1² − s2) / 2
        let s1_sq = g.square(s1);
        let d2 = g.sub(s1_sq, s2);
        let d2 = g.scale(d2, 0.5);
        // degree 3: (s1³ − 3 s1 s2 + 2 s3) / 6
        let s1_cub = g.mul(s1_sq, s1);
        let s1s2 = g.mul(s1, s2);
        let s1s2_3 = g.scale(s1s2, 3.0);
        let s3_2 = g.scale(s3, 2.0);
        let t = g.sub(s1_cub, s1s2_3);
        let t = g.add(t, s3_2);
        let d3 = g.scale(t, 1.0 / 6.0);

        let inter = g.add(d2, d3);
        let pooled = g.sum_lastdim(inter); // [b]
        let pooled = g.reshape(pooled, Shape::d2(batch.len, 1));
        let lin = self.base.linear_terms(g, ps, batch);
        let out = g.add(pooled, lin);
        g.reshape(out, Shape::d1(batch.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (Hofm, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let m = Hofm::new(&mut ps, &mut rng, &layout(), 6);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn order_blind_like_all_set_fms() {
        let (m, ps) = build();
        let b = batch();
        let rev = reverse_history(&b);
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &rev);
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn degree3_kernel_matches_brute_force() {
        // With zero first-order weights the logit is A₂ + A₃; check against
        // an explicit triple/pair enumeration for one instance.
        let (m, ps) = build();
        let l = layout();
        let inst = seqfm_data::build_instance(&l, 0, 2, &[1, 3, 7], MAX_SEQ, 1.0);
        let b = seqfm_data::Batch::try_from_instances(&[inst]).expect("valid batch");
        let es = ps.value(m.base.emb_static.table());
        let ed = ps.value(m.base.emb_dynamic.table());
        let rows: Vec<Vec<f32>> = vec![
            es.row(0).to_vec(),
            es.row(l.n_users + 2).to_vec(),
            ed.row(1).to_vec(),
            ed.row(3).to_vec(),
            ed.row(7).to_vec(),
        ];
        let dot =
            |a: &[f32], b: &[f32]| -> f64 { a.iter().zip(b).map(|(&x, &y)| (x * y) as f64).sum() };
        let tri = |a: &[f32], b: &[f32], c: &[f32]| -> f64 {
            a.iter().zip(b).zip(c).map(|((&x, &y), &z)| (x * y * z) as f64).sum()
        };
        let mut brute = 0.0f64;
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                brute += dot(&rows[i], &rows[j]);
                for k in (j + 1)..rows.len() {
                    brute += tri(&rows[i], &rows[j], &rows[k]);
                }
            }
        }
        let y = logits(&m, &ps, &b)[0] as f64;
        assert!((y - brute).abs() < 1e-3, "fast {y} vs brute {brute}");
    }
}
