//! SASRec — Self-Attentive Sequential Recommendation (Kang & McAuley,
//! ICDM 2018). The paper's additional ranking baseline (Table II).
//!
//! Item embeddings + learned positional embeddings feed a stack of causal
//! self-attention blocks, each followed by a point-wise two-layer FFN with
//! residual connections and LayerNorm. The candidate's score is the dot
//! product between the final state at the *last* position and the
//! candidate's item embedding (shared table), plus an item bias.

use crate::util::candidate_items;
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::{Embedding, LayerNorm, Linear, SelfAttention};
use seqfm_tensor::{AttnMask, Shape};
use std::sync::Arc;

struct Block {
    attn: SelfAttention,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
}

/// SASRec.
pub struct SasRec {
    layout: FeatureLayout,
    item_emb: Embedding,
    pos_emb: seqfm_autograd::ParamId,
    item_bias: Embedding,
    blocks: Vec<Block>,
    max_seq: usize,
    d: usize,
    dropout: f32,
}

impl SasRec {
    /// Builds SASRec with `n_blocks` attention blocks over sequences of
    /// length `max_seq`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
        max_seq: usize,
        n_blocks: usize,
        dropout: f32,
    ) -> Self {
        let item_emb = Embedding::new(ps, rng, "sasrec.item", layout.n_items, d);
        let pos_emb =
            ps.add_dense("sasrec.pos", seqfm_nn::init::normal(rng, Shape::d2(max_seq, d), 0.02));
        let item_bias = Embedding::zeros(ps, "sasrec.item_bias", layout.n_items, 1);
        let blocks = (0..n_blocks)
            .map(|i| Block {
                attn: SelfAttention::new(ps, rng, &format!("sasrec.b{i}.attn"), d),
                ln1: LayerNorm::new(ps, &format!("sasrec.b{i}.ln1"), d),
                ff1: Linear::new(ps, rng, &format!("sasrec.b{i}.ff1"), d, d, true),
                ff2: Linear::new(ps, rng, &format!("sasrec.b{i}.ff2"), d, d, true),
                ln2: LayerNorm::new(ps, &format!("sasrec.b{i}.ln2"), d),
            })
            .collect();
        SasRec { layout: *layout, item_emb, pos_emb, item_bias, blocks, max_seq, d, dropout }
    }
}

impl SeqModel for SasRec {
    fn name(&self) -> &str {
        "SASRec"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        assert_eq!(
            batch.n_dynamic, self.max_seq,
            "SASRec built for n˙={} but batch has {}",
            self.max_seq, batch.n_dynamic
        );
        let (b, n) = (batch.len, batch.n_dynamic);
        let e = self.item_emb.lookup(g, ps, &batch.dyn_idx, b, n);
        let pos = g.param(ps, self.pos_emb);
        let mut h = g.add_broadcast_batch(e, pos);
        if training && self.dropout > 0.0 {
            h = g.dropout(h, self.dropout, rng);
        }
        let mask = Arc::new(AttnMask::causal(n));
        for blk in &self.blocks {
            let normed = blk.ln1.forward(g, ps, h);
            let a = blk.attn.forward(g, ps, normed, Some(mask.clone()));
            let h1 = g.add(h, a);
            let normed2 = blk.ln2.forward(g, ps, h1);
            let f = blk.ff1.forward_3d(g, ps, normed2);
            let f = g.relu(f);
            let mut f = blk.ff2.forward_3d(g, ps, f);
            if training && self.dropout > 0.0 {
                f = g.dropout(f, self.dropout, rng);
            }
            h = g.add(h1, f);
        }
        // state at the last (most recent) position
        let last = g.slice_axis1(h, n - 1, 1);
        let last = g.reshape(last, Shape::d2(b, self.d));
        // candidate embedding from the shared item table
        let cand = candidate_items(batch, &self.layout);
        let ce = self.item_emb.lookup(g, ps, &cand, b, 1);
        let ce = g.reshape(ce, Shape::d2(b, self.d));
        let dot = g.row_dot(last, ce); // [b]
        let bias = self.item_bias.lookup(g, ps, &cand, b, 1);
        let bias = g.reshape(bias, Shape::d1(b));
        g.add(dot, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (SasRec, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let m = SasRec::new(&mut ps, &mut rng, &layout(), 8, MAX_SEQ, 2, 0.1);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn sasrec_is_order_sensitive() {
        let (m, ps) = build();
        let b = batch();
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &reverse_history(&b));
        // instance 0 has 3 distinct history items — reversal must change it
        assert!((a[0] - c[0]).abs() > 1e-6, "SASRec ignored item order");
        // instance 1 has a single history item — reversal is a no-op
        assert!((a[1] - c[1]).abs() < 1e-6);
    }

    #[test]
    fn candidate_embedding_is_shared_with_history() {
        // scoring item X after history [X] should differ from scoring item Y
        // after history [X] through the shared table.
        let (m, ps) = build();
        let l = layout();
        let same = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            0,
            2,
            &[2],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let diff = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            0,
            9,
            &[2],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let a = logits(&m, &ps, &same)[0];
        let c = logits(&m, &ps, &diff)[0];
        assert!((a - c).abs() > 1e-6);
    }

    #[test]
    #[should_panic(expected = "SASRec built for")]
    fn rejects_wrong_sequence_length() {
        let (m, ps) = build();
        let l = layout();
        let wrong = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            0,
            2,
            &[1],
            MAX_SEQ + 1,
            1.0,
        )])
        .expect("valid batch");
        let _ = logits(&m, &ps, &wrong);
    }
}
