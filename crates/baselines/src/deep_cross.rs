//! DeepCross / Deep Crossing (Shan et al., KDD 2016).
//!
//! Stacks residual units on top of the concatenated feature embeddings:
//! each unit computes `x + W₂·ReLU(W₁x + b₁) + b₂` (two-layer residual
//! block), "stacking multiple residual network blocks upon the concatenation
//! layer" (paper §V-B).

use crate::util::FmBase;
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::Linear;
use seqfm_tensor::Shape;

/// One Deep-Crossing residual unit.
struct ResidualUnit {
    l1: Linear,
    l2: Linear,
}

impl ResidualUnit {
    fn new<R: Rng + ?Sized>(ps: &mut ParamStore, rng: &mut R, name: &str, dim: usize) -> Self {
        ResidualUnit {
            l1: Linear::new(ps, rng, &format!("{name}.l1"), dim, dim, true),
            l2: Linear::new(ps, rng, &format!("{name}.l2"), dim, dim, true),
        }
    }

    fn forward(&self, g: &mut Graph, ps: &ParamStore, x: Var) -> Var {
        let h = self.l1.forward(g, ps, x);
        let h = g.relu(h);
        let h = self.l2.forward(g, ps, h);
        let sum = g.add(x, h);
        g.relu(sum)
    }
}

/// DeepCross with a configurable number of residual units.
pub struct DeepCross {
    base: FmBase,
    units: Vec<ResidualUnit>,
    head: Linear,
}

impl DeepCross {
    /// Builds DeepCross over the `[b, 3d]` dense input with `n_units`
    /// residual blocks.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
        n_units: usize,
    ) -> Self {
        let base = FmBase::new(ps, rng, "deepcross", layout, d);
        let width = 3 * d;
        let units = (0..n_units)
            .map(|i| ResidualUnit::new(ps, rng, &format!("deepcross.res{i}"), width))
            .collect();
        let head = Linear::new(ps, rng, "deepcross.head", width, 1, true);
        DeepCross { base, units, head }
    }
}

impl SeqModel for DeepCross {
    fn name(&self) -> &str {
        "DeepCross"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        _training: bool,
        _rng: &mut StdRng,
    ) -> Var {
        let (e_s, e_d) = self.base.embeddings(g, ps, batch);
        let flat_s = g.reshape(e_s, Shape::d2(batch.len, batch.n_static * self.base.d));
        let hist = g.mean_axis1(e_d);
        let mut x = g.concat_cols(&[flat_s, hist]); // [b, 3d]
        for unit in &self.units {
            x = unit.forward(g, ps, x);
        }
        let out = self.head.forward(g, ps, x); // [b, 1]
        let lin = self.base.linear_terms(g, ps, batch);
        let out = g.add(out, lin);
        g.reshape(out, Shape::d1(batch.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (DeepCross, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let m = DeepCross::new(&mut ps, &mut rng, &layout(), 8, 2);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn order_blind() {
        let (m, ps) = build();
        let b = batch();
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &reverse_history(&b));
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn depth_zero_reduces_to_linear_head() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let m = DeepCross::new(&mut ps, &mut rng, &layout(), 8, 0);
        let b = batch();
        let _ = logits(&m, &ps, &b); // must still run
    }
}
