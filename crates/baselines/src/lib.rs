#![warn(missing_docs)]

//! # seqfm-baselines
//!
//! All eleven comparison models from the paper's evaluation (§V-B), built on
//! the same tensor/autograd/layer substrate as SeqFM and implementing the
//! shared [`seqfm_core::SeqModel`] interface:
//!
//! | Model | Family | Used in |
//! |---|---|---|
//! | [`Fm`] | linear FM (Rendle 2010) | Tables II–IV |
//! | [`WideDeep`] | wide + deep tower | Tables II–IV |
//! | [`DeepCross`] | residual blocks over embeddings | Tables II–IV |
//! | [`Nfm`] | bi-interaction + MLP | Tables II–IV |
//! | [`Afm`] | attention over feature pairs | Tables II–IV |
//! | [`SasRec`] | causal self-attention recommender | Table II |
//! | [`Tfm`] | translation space, last item only | Table II |
//! | [`Din`] | candidate-activated interest | Table III |
//! | [`XDeepFm`] | CIN + DNN + linear | Table III |
//! | [`Rrn`] | GRU over rated items | Table IV |
//! | [`Hofm`] | order-3 ANOVA kernels | Table IV |
//!
//! [`registry`] builds the exact model roster of each paper table.

pub mod afm;
pub mod deep_cross;
pub mod din;
pub mod fm;
pub mod hofm;
pub mod nfm;
pub mod rrn;
pub mod sasrec;
pub mod tfm;
pub mod util;
pub mod wide_deep;
pub mod xdeepfm;

pub use afm::Afm;
pub use deep_cross::DeepCross;
pub use din::Din;
pub use fm::Fm;
pub use hofm::Hofm;
pub use nfm::Nfm;
pub use rrn::Rrn;
pub use sasrec::SasRec;
pub use tfm::Tfm;
pub use wide_deep::WideDeep;
pub use xdeepfm::XDeepFm;

pub mod registry {
    //! Model rosters per paper table.

    use super::*;
    use rand::rngs::StdRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{SeqFm, SeqFmConfig, SeqModel};
    use seqfm_data::FeatureLayout;

    /// Every model this workspace can build.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum ModelKind {
        /// Plain FM.
        Fm,
        /// Wide&Deep.
        WideDeep,
        /// DeepCross.
        DeepCross,
        /// Neural FM.
        Nfm,
        /// Attentional FM.
        Afm,
        /// SASRec (ranking).
        SasRec,
        /// Translation-based FM (ranking).
        Tfm,
        /// Deep Interest Network (CTR).
        Din,
        /// xDeepFM (CTR).
        XDeepFm,
        /// Recurrent Recommender Network (regression).
        Rrn,
        /// Higher-order FM (regression).
        Hofm,
        /// The paper's model.
        SeqFm,
    }

    /// Instantiates a model with fresh parameters in `ps`.
    ///
    /// `d` is the embedding width and `max_seq` the dynamic window; a light
    /// default dropout of 0.1 is applied to the deep baselines (their papers'
    /// defaults), while SeqFM uses its own config (`d`, `l=1`, `ρ=0.6` —
    /// the paper's unified setting).
    pub fn build(
        kind: ModelKind,
        ps: &mut ParamStore,
        rng: &mut StdRng,
        layout: &FeatureLayout,
        d: usize,
        max_seq: usize,
    ) -> Box<dyn SeqModel> {
        build_shared(kind, ps, rng, layout, d, max_seq)
    }

    /// Like [`build`], but returns a thread-shareable trait object — the
    /// form the serving layer needs (`seqfm_core::GraphScorer` over a
    /// `Send + Sync` model can be put behind an `Arc` and scored from many
    /// worker threads).
    pub fn build_shared(
        kind: ModelKind,
        ps: &mut ParamStore,
        rng: &mut StdRng,
        layout: &FeatureLayout,
        d: usize,
        max_seq: usize,
    ) -> Box<dyn SeqModel + Send + Sync> {
        match kind {
            ModelKind::Fm => Box::new(Fm::new(ps, rng, layout, d)),
            ModelKind::WideDeep => Box::new(WideDeep::new(ps, rng, layout, d, 0.1)),
            ModelKind::DeepCross => Box::new(DeepCross::new(ps, rng, layout, d, 2)),
            ModelKind::Nfm => Box::new(Nfm::new(ps, rng, layout, d, 0.1)),
            ModelKind::Afm => Box::new(Afm::new(ps, rng, layout, d, 0.1)),
            ModelKind::SasRec => Box::new(SasRec::new(ps, rng, layout, d, max_seq, 2, 0.1)),
            ModelKind::Tfm => Box::new(Tfm::new(ps, rng, layout, d)),
            ModelKind::Din => Box::new(Din::new(ps, rng, layout, d, 0.1)),
            ModelKind::XDeepFm => Box::new(XDeepFm::new(ps, rng, layout, d, 4, 0.1)),
            ModelKind::Rrn => Box::new(Rrn::new(ps, rng, layout, d)),
            ModelKind::Hofm => Box::new(Hofm::new(ps, rng, layout, d)),
            ModelKind::SeqFm => {
                let cfg = SeqFmConfig { d, max_seq, ..Default::default() };
                Box::new(SeqFm::new(ps, rng, layout, cfg))
            }
        }
    }

    /// Builds a model and wraps it — with its freshly initialised parameters
    /// — into a ready-to-serve [`seqfm_core::GraphScorer`]. Every entry of
    /// the paper's model roster becomes servable through one call.
    pub fn build_scorer(
        kind: ModelKind,
        rng: &mut StdRng,
        layout: &FeatureLayout,
        d: usize,
        max_seq: usize,
    ) -> seqfm_core::GraphScorer<Box<dyn SeqModel + Send + Sync>> {
        let mut ps = ParamStore::new();
        let model = build_shared(kind, &mut ps, rng, layout, d, max_seq);
        seqfm_core::GraphScorer::new(model, ps)
    }

    /// Table II roster (ranking), paper order.
    pub fn ranking_models() -> Vec<ModelKind> {
        vec![
            ModelKind::Fm,
            ModelKind::WideDeep,
            ModelKind::DeepCross,
            ModelKind::Nfm,
            ModelKind::Afm,
            ModelKind::SasRec,
            ModelKind::Tfm,
            ModelKind::SeqFm,
        ]
    }

    /// Table III roster (CTR), paper order.
    pub fn ctr_models() -> Vec<ModelKind> {
        vec![
            ModelKind::Fm,
            ModelKind::WideDeep,
            ModelKind::DeepCross,
            ModelKind::Nfm,
            ModelKind::Afm,
            ModelKind::Din,
            ModelKind::XDeepFm,
            ModelKind::SeqFm,
        ]
    }

    /// Table IV roster (regression), paper order.
    pub fn rating_models() -> Vec<ModelKind> {
        vec![
            ModelKind::Fm,
            ModelKind::WideDeep,
            ModelKind::DeepCross,
            ModelKind::Nfm,
            ModelKind::Afm,
            ModelKind::Rrn,
            ModelKind::Hofm,
            ModelKind::SeqFm,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::registry::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::{Graph, ParamStore};
    use seqfm_data::{build_instance, Batch, FeatureLayout};

    #[test]
    fn registry_builds_every_model_and_produces_finite_scores() {
        let layout = FeatureLayout { n_users: 6, n_items: 15 };
        let max_seq = 5;
        let b = Batch::try_from_instances(&[
            build_instance(&layout, 0, 3, &[1, 2], max_seq, 1.0),
            build_instance(&layout, 5, 14, &[4, 9, 2, 7, 1, 3], max_seq, 0.0),
        ])
        .expect("valid batch");
        let all = [
            ModelKind::Fm,
            ModelKind::WideDeep,
            ModelKind::DeepCross,
            ModelKind::Nfm,
            ModelKind::Afm,
            ModelKind::SasRec,
            ModelKind::Tfm,
            ModelKind::Din,
            ModelKind::XDeepFm,
            ModelKind::Rrn,
            ModelKind::Hofm,
            ModelKind::SeqFm,
        ];
        for kind in all {
            let mut ps = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(1);
            let model = build(kind, &mut ps, &mut rng, &layout, 8, max_seq);
            let mut g = Graph::new();
            let y = model.forward(&mut g, &ps, &b, false, &mut rng);
            assert_eq!(g.value(y).numel(), 2, "{:?} logit count", kind);
            assert!(!g.value(y).has_non_finite(), "{:?} emitted non-finite", kind);
        }
    }

    #[test]
    fn every_model_serves_through_the_scorer_adapter() {
        use seqfm_core::{Scorer, Scratch};
        let layout = FeatureLayout { n_users: 6, n_items: 15 };
        let max_seq = 5;
        let b = Batch::try_from_instances(&[
            build_instance(&layout, 0, 3, &[1, 2], max_seq, 1.0),
            build_instance(&layout, 5, 14, &[4, 9, 2, 7, 1, 3], max_seq, 0.0),
        ])
        .expect("valid batch");
        let all = [
            ModelKind::Fm,
            ModelKind::WideDeep,
            ModelKind::DeepCross,
            ModelKind::Nfm,
            ModelKind::Afm,
            ModelKind::SasRec,
            ModelKind::Tfm,
            ModelKind::Din,
            ModelKind::XDeepFm,
            ModelKind::Rrn,
            ModelKind::Hofm,
            ModelKind::SeqFm,
        ];
        let mut scratch = Scratch::new();
        for kind in all {
            let mut rng = StdRng::seed_from_u64(1);
            let scorer = build_scorer(kind, &mut rng, &layout, 8, max_seq);
            // Adapter output must equal a direct graph forward.
            let mut g = Graph::new();
            let mut rng2 = StdRng::seed_from_u64(9);
            let y = scorer.model().forward(&mut g, scorer.params(), &b, false, &mut rng2);
            let served = scorer.score(&b, &mut scratch);
            assert_eq!(served, g.value(y).data(), "{kind:?} serves different scores");
            // And the adapter must be shareable across threads.
            fn assert_send_sync<T: Send + Sync>(_: &T) {}
            assert_send_sync(&scorer);
        }
    }

    #[test]
    fn rosters_match_paper_tables() {
        assert_eq!(ranking_models().len(), 8);
        assert_eq!(ctr_models().len(), 8);
        assert_eq!(rating_models().len(), 8);
        assert_eq!(*ranking_models().last().unwrap(), ModelKind::SeqFm);
        assert!(ctr_models().contains(&ModelKind::Din));
        assert!(ctr_models().contains(&ModelKind::XDeepFm));
        assert!(rating_models().contains(&ModelKind::Rrn));
        assert!(rating_models().contains(&ModelKind::Hofm));
        assert!(ranking_models().contains(&ModelKind::SasRec));
        assert!(ranking_models().contains(&ModelKind::Tfm));
    }
}
