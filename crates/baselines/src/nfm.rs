//! Neural Factorization Machine (He & Chua, SIGIR 2017).
//!
//! `ŷ = w₀ + Σwᵢxᵢ + f(BiInteraction(Vx))` where the bi-interaction pooled
//! vector (same identity as plain FM, but kept as a `[b, d]` vector instead
//! of summing it) feeds a ReLU MLP whose output is projected to a scalar.

use crate::util::FmBase;
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::Mlp;
use seqfm_tensor::Shape;

/// NFM with one hidden layer (the paper's best-performing depth).
pub struct Nfm {
    base: FmBase,
    mlp: Mlp,
    dropout: f32,
}

impl Nfm {
    /// Builds an NFM; the hidden layer matches the embedding width.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
        dropout: f32,
    ) -> Self {
        let base = FmBase::new(ps, rng, "nfm", layout, d);
        let mlp = Mlp::new(ps, rng, "nfm.mlp", &[d, d, 1]);
        Nfm { base, mlp, dropout }
    }
}

impl SeqModel for Nfm {
    fn name(&self) -> &str {
        "NFM"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let bi = self.base.bi_interaction(g, ps, batch); // [b, d]
        let deep = self.mlp.forward(g, ps, bi, self.dropout, training, rng); // [b, 1]
        let lin = self.base.linear_terms(g, ps, batch);
        let out = g.add(deep, lin);
        g.reshape(out, Shape::d1(batch.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (Nfm, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let m = Nfm::new(&mut ps, &mut rng, &layout(), 8, 0.2);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn order_blind() {
        let (m, ps) = build();
        let b = batch();
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &reverse_history(&b));
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn differs_from_plain_fm() {
        // The MLP must actually transform the bi-interaction vector: an NFM
        // and an FM with identical seeds should disagree.
        let mut ps_fm = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let fm = crate::fm::Fm::new(&mut ps_fm, &mut rng, &layout(), 8);
        let (nfm, ps_nfm) = build();
        let b = batch();
        let a = logits(&fm, &ps_fm, &b);
        let c = logits(&nfm, &ps_nfm, &b);
        assert!(a.iter().zip(&c).any(|(x, y)| (x - y).abs() > 1e-6));
    }
}
