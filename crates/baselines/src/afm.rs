//! Attentional Factorization Machine (Xiao et al., IJCAI 2017).
//!
//! Every pair of active features interacts via the element-wise product
//! `vᵢ ⊙ vⱼ`; an attention MLP scores each pair, softmax normalises the
//! scores, and the attention-weighted sum of pair vectors is projected to a
//! scalar. Padding rows embed to zero, so their pair products vanish from
//! the weighted sum (their attention weight is wasted mass, exactly like in
//! the reference implementation fed with fixed-length set features).

use crate::util::FmBase;
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamId, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_nn::Linear;
use seqfm_tensor::Shape;

/// AFM.
pub struct Afm {
    base: FmBase,
    attn: Linear,
    attn_out: Linear,
    p: ParamId,
    dropout: f32,
}

impl Afm {
    /// Builds an AFM with attention width `d` (same as embeddings).
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
        dropout: f32,
    ) -> Self {
        let base = FmBase::new(ps, rng, "afm", layout, d);
        let attn = Linear::new(ps, rng, "afm.attn", d, d, true);
        let attn_out = Linear::new(ps, rng, "afm.attn_out", d, 1, false);
        let p = ps.add_dense("afm.p", seqfm_nn::init::xavier_uniform(rng, d, 1));
        Afm { base, attn, attn_out, p, dropout }
    }
}

impl SeqModel for Afm {
    fn name(&self) -> &str {
        "AFM"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let (e_s, e_d) = self.base.embeddings(g, ps, batch);
        let all = g.concat_axis1(e_s, e_d); // [b, n, d]
        let n = batch.n_static + batch.n_dynamic;
        // enumerate ordered index pairs i < j
        let mut left = Vec::with_capacity(n * (n - 1) / 2);
        let mut right = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                left.push(i);
                right.push(j);
            }
        }
        let li = g.index_select_axis1(all, &left); // [b, P, d]
        let ri = g.index_select_axis1(all, &right);
        let pairs = g.mul(li, ri); // vᵢ ⊙ vⱼ
        let p_cnt = left.len();

        // attention scores: softmax over pairs of h·ReLU(W p + b)
        let flat = g.reshape(pairs, Shape::d2(batch.len * p_cnt, self.base.d));
        let hidden = self.attn.forward(g, ps, flat);
        let hidden = g.relu(hidden);
        let scores = self.attn_out.forward(g, ps, hidden); // [b·P, 1]
        let scores = g.reshape(scores, Shape::d2(batch.len, p_cnt));
        let weights = g.softmax(scores); // [b, P]
        let weights3 = g.reshape(weights, Shape::d3(batch.len, 1, p_cnt));
        let pooled = g.bmm(weights3, pairs); // [b, 1, d]
        let mut pooled = g.reshape(pooled, Shape::d2(batch.len, self.base.d));
        if training && self.dropout > 0.0 {
            pooled = g.dropout(pooled, self.dropout, rng);
        }
        let p = g.param(ps, self.p);
        let second = g.matmul(pooled, p); // [b, 1]
        let lin = self.base.linear_terms(g, ps, batch);
        let out = g.add(second, lin);
        g.reshape(out, Shape::d1(batch.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (Afm, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let m = Afm::new(&mut ps, &mut rng, &layout(), 8, 0.1);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn order_blind() {
        // AFM attends over unordered pairs: history order must not matter.
        let (m, ps) = build();
        let b = batch();
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &reverse_history(&b));
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 2e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn attention_distinguishes_pairs() {
        // Two instances with different histories must receive different
        // attention-pooled interactions.
        let (m, ps) = build();
        let l = layout();
        let b1 = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            1,
            4,
            &[2, 3],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let b2 = seqfm_data::Batch::try_from_instances(&[seqfm_data::build_instance(
            &l,
            1,
            4,
            &[8, 9],
            MAX_SEQ,
            1.0,
        )])
        .expect("valid batch");
        let a = logits(&m, &ps, &b1)[0];
        let c = logits(&m, &ps, &b2)[0];
        assert!((a - c).abs() > 1e-6);
    }
}
