//! Plain Factorization Machine (Rendle 2010) — paper Eq. 2.
//!
//! `ŷ = w₀ + Σ wᵢxᵢ + Σᵢ<ⱼ ⟨vᵢ, vⱼ⟩ xᵢxⱼ`, computed with the O(n·d)
//! bi-interaction identity. Dynamic features enter as *set-category*
//! features exactly as the paper feeds them to FM-family baselines (§V-C):
//! the model is blind to their order by construction.

use crate::util::FmBase;
use rand::rngs::StdRng;
use rand::Rng;
use seqfm_autograd::{Graph, ParamStore, Var};
use seqfm_core::SeqModel;
use seqfm_data::{Batch, FeatureLayout};
use seqfm_tensor::Shape;

/// Plain FM.
pub struct Fm {
    base: FmBase,
}

impl Fm {
    /// Builds an FM with embedding width `d`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        layout: &FeatureLayout,
        d: usize,
    ) -> Self {
        Fm { base: FmBase::new(ps, rng, "fm", layout, d) }
    }
}

impl SeqModel for Fm {
    fn name(&self) -> &str {
        "FM"
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        _training: bool,
        _rng: &mut StdRng,
    ) -> Var {
        let bi = self.base.bi_interaction(g, ps, batch); // [b, d]
        let second = g.sum_lastdim(bi); // [b]
        let second = g.reshape(second, Shape::d2(batch.len, 1));
        let lin = self.base.linear_terms(g, ps, batch); // [b, 1]
        let out = g.add(second, lin);
        g.reshape(out, Shape::d1(batch.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::testkit::*;
    use rand::SeedableRng;

    fn build() -> (Fm, ParamStore) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let m = Fm::new(&mut ps, &mut rng, &layout(), 8);
        (m, ps)
    }

    #[test]
    fn shapes_and_gradients() {
        let (m, mut ps) = build();
        let b = batch();
        let _ = logits(&m, &ps, &b);
        check_grad_flow(&m, &mut ps, &b);
    }

    #[test]
    fn fm_is_order_blind() {
        // Set-category semantics: permuting the history must not change the
        // score (this is exactly the limitation SeqFM addresses).
        let (m, ps) = build();
        let b = batch();
        let rev = reverse_history(&b);
        let a = logits(&m, &ps, &b);
        let c = logits(&m, &ps, &rev);
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-5, "FM became order-sensitive: {x} vs {y}");
        }
    }

    #[test]
    fn bi_interaction_matches_explicit_pairs() {
        // Brute-force Σᵢ<ⱼ ⟨vᵢ,vⱼ⟩ over the non-zero features of one
        // instance must equal the fast identity.
        let (m, ps) = build();
        let l = layout();
        let inst = seqfm_data::build_instance(&l, 1, 4, &[2, 6], MAX_SEQ, 1.0);
        let b = seqfm_data::Batch::try_from_instances(&[inst]).expect("valid batch");
        // collect the four active embedding rows: user 1, item-feature 4,
        // dynamic 2, dynamic 6
        let es = ps.value(m.base.emb_static.table());
        let ed = ps.value(m.base.emb_dynamic.table());
        let rows: Vec<&[f32]> = vec![es.row(1), es.row(l.n_users + 4), ed.row(2), ed.row(6)];
        let mut brute = 0.0f64;
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                brute += rows[i].iter().zip(rows[j]).map(|(&a, &b)| (a * b) as f64).sum::<f64>();
            }
        }
        // subtract linear terms (zero-init) and w0 (zero) → logit is exactly
        // the pairwise term
        let y = logits(&m, &ps, &b)[0] as f64;
        assert!((y - brute).abs() < 1e-4, "fast {y} vs brute {brute}");
    }
}
