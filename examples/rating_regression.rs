//! Rating prediction (the paper's regression task, §IV-C) with model
//! checkpointing: train SeqFM on an Amazon-Beauty-like dataset, save the
//! parameters to a binary blob, reload them into a fresh model, and verify
//! the restored model predicts identically.
//!
//! ```text
//! cargo run --release --example rating_regression
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{evaluate_rating, train_rating, SeqFm, SeqFmConfig, TrainConfig};
use seqfm_data::{rating::RatingConfig, FeatureLayout, LeaveOneOut, Scale};
use seqfm_nn::checkpoint;

fn main() {
    let mut gen_cfg = RatingConfig::beauty(Scale::Small);
    gen_cfg.n_users = 70;
    gen_cfg.n_items = 160;
    let dataset = seqfm_data::rating::generate(&gen_cfg).expect("valid config");
    println!("dataset: {}", dataset.stats());

    let split = LeaveOneOut::split(&dataset);
    let layout = FeatureLayout::of(&dataset);

    let mut params = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(11);
    let model_cfg = SeqFmConfig { d: 16, max_seq: 10, dropout: 0.3, ..Default::default() };
    let model = SeqFm::new(&mut params, &mut rng, &layout, model_cfg);

    let train_cfg =
        TrainConfig { epochs: 35, batch_size: 128, lr: 5e-3, max_seq: 10, ..Default::default() };
    let report = train_rating(&model, &mut params, &split, &layout, &train_cfg);
    let eval = evaluate_rating(&model, &params, &split, &layout, 10, report.target_offset);
    println!(
        "SeqFM after {} epochs: MAE = {:.3}, RRSE = {:.3} (training mean {:.2})",
        report.epoch_losses.len(),
        eval.mae,
        eval.rrse,
        report.target_offset
    );

    // Checkpoint round-trip: serialise, scramble, restore, re-evaluate.
    let blob = checkpoint::save(&params);
    println!("checkpoint: {} bytes for {} parameters", blob.len(), params.total_elems());
    for id in params.ids() {
        for v in params.value_mut(id).data_mut() {
            *v = 0.0;
        }
    }
    checkpoint::load(&mut params, &blob).expect("restore");
    let restored = evaluate_rating(&model, &params, &split, &layout, 10, report.target_offset);
    assert!((restored.mae - eval.mae).abs() < 1e-9, "restored model must predict identically");
    println!("ok: checkpoint round-trip reproduces MAE {:.3} exactly", restored.mae);
}
