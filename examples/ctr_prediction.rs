//! CTR prediction (the paper's classification task, §IV-B): train SeqFM and
//! two baselines (FM, DIN) on a Taobao-like click log and compare AUC/RMSE.
//!
//! ```text
//! cargo run --release --example ctr_prediction
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_baselines::{Din, Fm};
use seqfm_core::{evaluate_ctr, train_ctr, SeqFm, SeqFmConfig, SeqModel, TrainConfig};
use seqfm_data::{ctr::CtrConfig, FeatureLayout, LeaveOneOut, NegativeSampler, Scale};

fn main() {
    let mut gen_cfg = CtrConfig::taobao(Scale::Small);
    gen_cfg.n_users = 80;
    gen_cfg.n_items = 200;
    let dataset = seqfm_data::ctr::generate(&gen_cfg).expect("valid config");
    println!("dataset: {}", dataset.stats());

    let split = LeaveOneOut::split(&dataset);
    let layout = FeatureLayout::of(&dataset);
    let seen = (0..dataset.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(dataset.n_items, seen);

    let train_cfg = TrainConfig {
        epochs: 25,
        batch_size: 120,
        lr: 5e-3,
        max_seq: 15,
        ctr_negatives: 5, // paper §IV-D: 5 negatives per positive
        seed: 7,
        ..TrainConfig::default()
    };

    // Three contenders sharing the training protocol.
    type ModelBuilder<'a> = Box<dyn Fn(&mut ParamStore, &mut StdRng) -> Box<dyn SeqModel> + 'a>;
    let contenders: Vec<(&str, ModelBuilder<'_>)> = vec![
        ("FM", Box::new(|ps, rng| Box::new(Fm::new(ps, rng, &layout, 16)))),
        ("DIN", Box::new(|ps, rng| Box::new(Din::new(ps, rng, &layout, 16, 0.1)))),
        (
            "SeqFM",
            Box::new(|ps, rng| {
                let cfg = SeqFmConfig { d: 16, max_seq: 15, ..Default::default() };
                Box::new(SeqFm::new(ps, rng, &layout, cfg))
            }),
        ),
    ];

    println!("{:<8} {:>8} {:>8}", "model", "AUC", "RMSE");
    for (name, make) in contenders {
        let mut params = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let model = make(&mut params, &mut rng);
        train_ctr(model.as_ref(), &mut params, &split, &layout, &sampler, &train_cfg);
        let ev = evaluate_ctr(model.as_ref(), &params, &split, &layout, &sampler, 15, 99);
        println!("{name:<8} {:>8.3} {:>8.3}", ev.auc, ev.rmse);
        assert!(ev.auc > 0.5, "{name} should beat a coin flip");
    }
    println!("ok: all models beat chance AUC on the held-out clicks");
}
