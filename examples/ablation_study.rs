//! Mini ablation study (paper Table V, §VI-C): train the full SeqFM and the
//! "Remove DV" (no dynamic view) and "Remove CV" (no cross view) variants on
//! the same check-in data and show the damage each removal causes.
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{
    evaluate_ranking, train_ranking, Ablation, RankingEvalConfig, SeqFm, SeqFmConfig, TrainConfig,
};
use seqfm_data::{ranking::RankingConfig, FeatureLayout, LeaveOneOut, NegativeSampler, Scale};

fn main() {
    let mut gen_cfg = RankingConfig::gowalla(Scale::Small);
    gen_cfg.n_users = 60;
    gen_cfg.n_items = 150;
    let dataset = seqfm_data::ranking::generate(&gen_cfg).expect("valid config");
    let split = LeaveOneOut::split(&dataset);
    let layout = FeatureLayout::of(&dataset);
    let seen = (0..dataset.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(dataset.n_items, seen);

    let base = Ablation::default();
    let variants = vec![
        ("Default", base),
        ("Remove DV", Ablation { dynamic_view: false, ..base }),
        ("Remove CV", Ablation { cross_view: false, ..base }),
    ];

    let train_cfg =
        TrainConfig { epochs: 30, batch_size: 128, lr: 5e-3, max_seq: 12, ..Default::default() };
    let eval_cfg = RankingEvalConfig { negatives: 100, max_seq: 12, ..Default::default() };

    println!("{:<12} {:>8} {:>8} {:>10}", "variant", "HR@10", "NDCG@10", "params");
    for (name, ablation) in variants {
        let mut params = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SeqFmConfig { d: 16, max_seq: 12, ablation, ..Default::default() };
        let model = SeqFm::new(&mut params, &mut rng, &layout, cfg);
        train_ranking(&model, &mut params, &split, &layout, &sampler, &train_cfg);
        let acc = evaluate_ranking(&model, &params, &split, &layout, &sampler, &eval_cfg);
        println!(
            "{name:<12} {:>8.3} {:>8.3} {:>10}",
            acc.hr(10),
            acc.ndcg(10),
            params.total_elems()
        );
    }
    println!("(paper Table V: removing the dynamic view causes the largest drop)");
}
