//! Two-phase story: **train** with the graph-based `SeqModel::forward`,
//! **deploy** with the graph-free `Scorer` API behind a multi-threaded
//! serving engine.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, Scorer, Scratch, SeqFm, SeqFmConfig, TrainConfig};
use seqfm_data::{ranking::RankingConfig, FeatureLayout, LeaveOneOut, NegativeSampler, Scale};
use seqfm_nn::checkpoint;
use seqfm_serve::{Engine, EngineConfig, ScoreRequest, ServeError};
use std::sync::Arc;
use std::time::Instant;

/// The engine's current best stored-history recommendation for `user` —
/// the "user clicked the top item" half of the streaming demo.
fn resp_preview(engine: &seqfm_serve::Engine, user: u32) -> u32 {
    engine
        .score_stored(user, (0..120u32).collect::<Vec<u32>>())
        .expect("valid request")
        .best()
        .expect("non-empty")
        .item
}

fn main() {
    // ---- Phase 1: train (autograd graphs, mutable ParamStore) --------------
    let mut gen_cfg = RankingConfig::gowalla(Scale::Small);
    gen_cfg.n_users = 48;
    gen_cfg.n_items = 120;
    let dataset = seqfm_data::ranking::generate(&gen_cfg).expect("valid config");
    let split = LeaveOneOut::split(&dataset);
    let layout = FeatureLayout::of(&dataset);
    let seen = (0..dataset.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(dataset.n_items, seen);

    let mut params = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let max_seq = 10;
    let model_cfg = SeqFmConfig { d: 16, max_seq, ..Default::default() };
    let model = SeqFm::new(&mut params, &mut rng, &layout, model_cfg);
    let train_cfg =
        TrainConfig { epochs: 10, batch_size: 128, lr: 5e-3, max_seq, ..Default::default() };
    let report =
        seqfm_core::train_ranking(&model, &mut params, &split, &layout, &sampler, &train_cfg);
    println!(
        "phase 1 — trained SeqFM: loss {:.4} -> {:.4} in {:.1}s",
        report.epoch_losses[0],
        report.final_loss(),
        report.seconds
    );

    // ---- Phase 2: freeze & serve (immutable snapshot, no graphs) -----------
    // Ship the model as a checkpoint blob, then load it straight into the
    // graph-free form — what a serving fleet would do at startup.
    let blob = checkpoint::save(&params);
    let frozen = FrozenSeqFm::from_checkpoint(&blob, &layout, model_cfg).expect("valid checkpoint");
    println!(
        "phase 2 — frozen {} ({} params) from a {}-byte checkpoint",
        frozen.name(),
        frozen.params().total_elems(),
        blob.len()
    );

    // A 2-thread engine sharing one Arc'd frozen model. The admission
    // queue is bounded and workers coalesce queued same-history requests
    // into super-batches (both defaults; spelled out here for the story).
    let engine = Engine::new(
        Arc::new(frozen),
        layout,
        EngineConfig::builder()
            .threads(2)
            .max_seq(max_seq)
            .top_k(5)
            .queue_capacity(256)
            .coalesce_max(16)
            .build()
            .expect("valid engine config"),
    )
    .expect("valid engine config");

    // ---- Phase 3: stateful serving — the engine owns the sequences ---------
    // Warm the engine's history store from the training split once; from
    // here on a request is just (user, candidates), and `append_event`
    // keeps the stored sequences current as interactions stream in.
    let mut warmed = 0usize;
    for u in 0..dataset.n_users {
        for e in &split.train[u] {
            engine.append_event(u as u32, e.item).expect("valid ids");
            warmed += 1;
        }
    }
    println!("phase 3 — warmed the history store with {warmed} events; requests are now (user, candidates)");
    let t0 = Instant::now();
    // The non-blocking front door: `submit` either admits or sheds with
    // `ServeError::Overloaded`. A real network layer would turn that into
    // "503, retry later"; here we fall back to the parking `submit_wait`.
    let mut shed = 0usize;
    let pending: Vec<_> = (0..dataset.n_users as u32)
        .map(|u| {
            // Stored-history submission: no history payload on the wire.
            engine
                .submit_stored(u, (0..dataset.n_items as u32).collect::<Vec<u32>>())
                .unwrap_or_else(|err| match err {
                    ServeError::Overloaded { req, .. } => {
                        // The shed request comes back inside the error — park
                        // on capacity with it, no defensive clone needed.
                        shed += 1;
                        engine.submit_wait(*req)
                    }
                    other => panic!("unexpected submit error: {other}"),
                })
        })
        .collect();
    let n_req = pending.len();
    for p in pending {
        p.wait().expect("valid request");
    }
    let dt = t0.elapsed();
    let stats = engine.cache_stats();
    println!(
        "served {} full-catalog (user, candidates) requests ({} candidates each) on 2 threads in {:.1}ms ({:.0} req/s, {} shed->parked, view-cache hit rate {:.0}%)",
        n_req,
        dataset.n_items,
        dt.as_secs_f64() * 1e3,
        n_req as f64 / dt.as_secs_f64(),
        shed,
        stats.hit_rate() * 100.0
    );

    // An interaction streams in; the stored sequence and the next response
    // move together. Inline requests still work for stateless callers —
    // and bit-match the stored path over the same window.
    let user0 = 0u32;
    let clicked = resp_preview(&engine, user0);
    engine.append_event(user0, clicked).expect("valid ids");
    let window = engine.history(user0).expect("known user");
    let resp = engine
        .score_stored(user0, (0..dataset.n_items as u32).collect::<Vec<u32>>())
        .expect("valid request");
    let inline = engine
        .score(ScoreRequest::inline(
            user0,
            window.clone(),
            (0..dataset.n_items as u32).collect::<Vec<u32>>(),
        ))
        .expect("valid request");
    assert_eq!(resp, inline, "stored and inline paths must score identically");
    println!("top-5 for user {user0} after clicking item {clicked} (stored window {window:?}):");
    for (rank, c) in resp.ranked.iter().enumerate() {
        println!("  #{:<2} item {:<4} score {:+.4}", rank + 1, c.item, c.score);
    }

    // The compatibility path: any baseline serves through GraphScorer.
    let mut rng2 = StdRng::seed_from_u64(1);
    let fm_scorer = seqfm_baselines::registry::build_scorer(
        seqfm_baselines::registry::ModelKind::Fm,
        &mut rng2,
        &layout,
        16,
        max_seq,
    );
    let mut scratch = Scratch::new();
    let fm_resp = seqfm_serve::score_request(
        &fm_scorer,
        &layout,
        max_seq,
        3,
        &ScoreRequest::inline(1, vec![3, 8, 2], vec![5, 9, 40, 77]),
        &mut scratch,
    )
    .expect("valid request");
    println!(
        "baseline {} serves too: best candidate {} of 4",
        fm_scorer.name(),
        fm_resp.best().expect("non-empty").item
    );
}
