//! Quickstart: build a SeqFM, train it for next-item ranking on a small
//! synthetic check-in dataset, and evaluate HR@10 / NDCG@10.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{
    evaluate_ranking, train_ranking, RankingEvalConfig, SeqFm, SeqFmConfig, TrainConfig,
};
use seqfm_data::{ranking::RankingConfig, FeatureLayout, LeaveOneOut, NegativeSampler, Scale};

fn main() {
    // 1. Data: a Gowalla-like synthetic check-in log (chronological per user).
    let mut gen_cfg = RankingConfig::gowalla(Scale::Small);
    gen_cfg.n_users = 60;
    gen_cfg.n_items = 150;
    let dataset = seqfm_data::ranking::generate(&gen_cfg).expect("valid config");
    println!("dataset: {}", dataset.stats());

    // 2. Leave-one-out protocol: last event = test, second-to-last = valid.
    let split = LeaveOneOut::split(&dataset);
    let layout = FeatureLayout::of(&dataset);
    let seen = (0..dataset.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(dataset.n_items, seen);

    // 3. Model: SeqFM with the paper's architecture (3 attention views +
    //    shared residual FFN), d=16 for a fast demo.
    let mut params = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2026);
    let model_cfg = SeqFmConfig { d: 16, max_seq: 12, ..Default::default() };
    let model = SeqFm::new(&mut params, &mut rng, &layout, model_cfg);
    println!(
        "model: SeqFM with {} parameters across {} tensors",
        params.total_elems(),
        params.len()
    );

    // 4. Train with the BPR pairwise loss (paper Eq. 21) on Adam.
    let train_cfg =
        TrainConfig { epochs: 30, batch_size: 128, lr: 5e-3, max_seq: 12, ..Default::default() };
    let report = train_ranking(&model, &mut params, &split, &layout, &sampler, &train_cfg);
    println!(
        "trained {} steps in {:.1}s; loss {:.4} -> {:.4}",
        report.steps,
        report.seconds,
        report.epoch_losses[0],
        report.final_loss()
    );

    // 5. Evaluate: rank the held-out item against 100 sampled negatives.
    let eval_cfg = RankingEvalConfig { negatives: 100, max_seq: 12, ..Default::default() };
    let acc = evaluate_ranking(&model, &params, &split, &layout, &sampler, &eval_cfg);
    println!(
        "test ranking over {} users: HR@10 = {:.3}, NDCG@10 = {:.3} (random ≈ {:.3})",
        acc.cases(),
        acc.hr(10),
        acc.ndcg(10),
        10.0 / 101.0,
    );
    assert!(acc.hr(10) > 10.0 / 101.0, "model should beat random ranking");
    println!("ok: SeqFM beats the random-ranking floor");
}
