//! The full online-learning loop: serve → append events → incrementally
//! train → atomically hot-swap → serve the new epoch — with a live parity
//! check at every swap proving the hot-swapped engine is bit-identical to
//! a cold engine built directly on the published model.
//!
//! ```text
//! cargo run --release --example online_learning
//! ```
//!
//! The moving parts, in the order they appear:
//!
//! 1. **Warm start** — offline BPR training (the paper's Eq. 21 loop)
//!    produces the initial model; the engine serves it as epoch `e0`.
//! 2. **Event stream** — the engine owns the histories; every
//!    `append_event` also lands in the attached [`EventLog`].
//! 3. **Online trainer** — [`OnlineTrainer::pump`] drains the log, folds
//!    the events into deterministic minibatches (sparse per-row Adam), and
//!    publishes versioned snapshots (`e1`, `e2`, …) straight into the
//!    engine's hot-swap slot. Serving never pauses.
//! 4. **Epoch-aware serving** — responses carry the epoch they were scored
//!    under; cached history views and the catalog index follow the swap.
//! 5. **Rollback** — republishing a retained epoch restores its serving
//!    behaviour exactly, original stamp included.
//!
//! [`EventLog`]: seqfm_serve::EventLog
//! [`OnlineTrainer::pump`]: seqfm_train::OnlineTrainer::pump

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig, TrainConfig};
use seqfm_data::{ranking::RankingConfig, FeatureLayout, LeaveOneOut, NegativeSampler, Scale};
use seqfm_serve::{CatalogIndex, Engine, EngineConfig, ScoreResponse};
use seqfm_train::{OnlineConfig, OnlineTrainer};
use std::sync::Arc;

const MAX_SEQ: usize = 10;

/// Bitwise response comparison — the parity check that makes "hot-swap is
/// non-disruptive" a verifiable claim rather than a slogan.
fn assert_parity(warm: &ScoreResponse, cold: &ScoreResponse, what: &str) {
    assert_eq!(warm.epoch, cold.epoch, "{what}: epoch mismatch");
    for (a, b) in warm.ranked.iter().zip(&cold.ranked) {
        assert_eq!(a.item, b.item, "{what}: item mismatch");
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "{what}: score bits mismatch");
    }
}

fn main() {
    // ---- Warm start: offline training, freeze, serve as e0 -----------------
    let mut gen_cfg = RankingConfig::gowalla(Scale::Small);
    gen_cfg.n_users = 48;
    gen_cfg.n_items = 120;
    let dataset = seqfm_data::ranking::generate(&gen_cfg).expect("valid config");
    let split = LeaveOneOut::split(&dataset);
    let layout = FeatureLayout::of(&dataset);
    let seen = (0..dataset.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(dataset.n_items, seen);

    let mut params = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let model_cfg = SeqFmConfig { d: 16, max_seq: MAX_SEQ, ..Default::default() };
    let model = SeqFm::new(&mut params, &mut rng, &layout, model_cfg);
    let train_cfg = TrainConfig {
        epochs: 4,
        batch_size: 128,
        lr: 5e-3,
        max_seq: MAX_SEQ,
        ..Default::default()
    };
    let report =
        seqfm_core::train_ranking(&model, &mut params, &split, &layout, &sampler, &train_cfg);
    println!(
        "warm start — offline loss {:.4} -> {:.4} in {:.1}s",
        report.epoch_losses[0],
        report.final_loss(),
        report.seconds
    );

    let engine_cfg =
        EngineConfig::builder().threads(2).max_seq(MAX_SEQ).top_k(5).build().expect("valid config");
    let index_model = Arc::new(FrozenSeqFm::freeze(&model, &params));
    let engine = Engine::new_frozen(FrozenSeqFm::freeze(&model, &params), layout, engine_cfg)
        .expect("valid engine")
        .with_catalog_index(Arc::new(CatalogIndex::build(index_model, layout, 32)))
        .with_event_log();
    engine.warm_histories(&dataset).expect("layout-consistent dataset");
    println!("serving — engine up at epoch {}", engine.current_epoch());

    // ---- The crank: traffic in, epochs out ---------------------------------
    let mut trainer = OnlineTrainer::new(
        model,
        params,
        layout,
        OnlineConfig { batch_size: 16, publish_every: 4, max_seq: MAX_SEQ, ..Default::default() },
    );

    let candidates: Vec<u32> = (0..120).collect();
    let mut last_resp = engine.score_stored(3, candidates.clone()).expect("valid request");
    for round in 0..3 {
        // Live traffic: users interact, the engine records, responses flow.
        for k in 0..64u32 {
            let user = (k * 7 + round) % 48;
            let item = (k * 13 + round * 5) % 120;
            engine.append_event(user, item).expect("known ids");
        }
        let resp = engine.score_stored(3, candidates.clone()).expect("valid request");
        assert_eq!(resp.epoch, engine.current_epoch());

        // One pump: drain the 64 logged events, train, publish.
        let published = trainer.pump(&engine);
        let top = engine.retrieve_top_k(3, 3).expect("valid retrieval");
        println!(
            "round {round}: +64 events -> published {:?}; serving epoch {}; user 3 top-3 of catalog: {:?}",
            published,
            engine.current_epoch(),
            top.items.iter().map(|s| s.item).collect::<Vec<_>>()
        );

        // Live parity check: the warm, hot-swapped engine must serve the
        // published model exactly as a cold engine freshly built on it.
        if let Some(snap) = trainer.latest_snapshot() {
            let cold = Engine::new_frozen(trainer.frozen_for(snap), layout, engine_cfg)
                .expect("valid engine");
            for u in 0..48 {
                for item in engine.history(u).expect("known user") {
                    cold.append_event(u, item).expect("known ids");
                }
            }
            let warm_resp = engine.score_stored(3, candidates.clone()).expect("valid request");
            let cold_resp = cold.score_stored(3, candidates.clone()).expect("valid request");
            assert_parity(&warm_resp, &cold_resp, "post-swap");
            last_resp = warm_resp;
        }
    }
    println!("parity — hot-swapped engine bit-identical to cold rebuild at every epoch");

    // ---- Rollback: yesterday's model, exactly as served --------------------
    let epochs = trainer.rollback_epochs();
    let back_to = epochs[epochs.len() - 2];
    let rolled = trainer.rollback_to(back_to).expect("epoch retained");
    engine.publish_frozen(rolled);
    let rolled_resp = engine.score_stored(3, candidates).expect("valid request");
    println!(
        "rollback — serving epoch {} again (was {}); top item {} at {:.4}",
        engine.current_epoch(),
        last_resp.epoch,
        rolled_resp.ranked[0].item,
        rolled_resp.ranked[0].score
    );
    assert_eq!(engine.current_epoch(), back_to);
}
