//! Full-catalog retrieval: ask the engine for the best k items of the
//! **entire** catalog — not a caller-supplied candidate slate — via the
//! blocked, upper-bound-pruned `CatalogIndex` scan.
//!
//! The demo trains a small SeqFM, freezes it, builds a catalog index,
//! attaches it to a serving engine, and then:
//!
//! 1. streams a few events into a user's stored history,
//! 2. retrieves the exact top-10 of the whole catalog for that user,
//! 3. shows the prune accounting (blocks scored vs. pruned — a briefly
//!    trained model has little item-linear spread, so expect few or no
//!    pruned blocks here; see `benches/retrieval.rs` for the skewed-catalog
//!    regime where the prune skips ~18% of a 1M-item catalog) and verifies
//!    the result is bit-identical to brute force,
//! 4. appends one more event and retrieves again — the version bump
//!    rebuilds the cached history view, so the fresh click shifts the
//!    ranking immediately.
//!
//! ```text
//! cargo run --release --example retrieval
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig, TrainConfig};
use seqfm_data::{ranking::RankingConfig, FeatureLayout, LeaveOneOut, NegativeSampler, Scale};
use seqfm_serve::{CatalogIndex, Engine, EngineConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // ---- Train a small model (same recipe as examples/serving.rs) ---------
    let mut gen_cfg = RankingConfig::gowalla(Scale::Small);
    gen_cfg.n_users = 48;
    gen_cfg.n_items = 500;
    let dataset = seqfm_data::ranking::generate(&gen_cfg).expect("valid config");
    let split = LeaveOneOut::split(&dataset);
    let layout = FeatureLayout::of(&dataset);
    let seen = (0..dataset.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(dataset.n_items, seen);

    let mut params = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let max_seq = 10;
    let model_cfg = SeqFmConfig { d: 16, max_seq, ..Default::default() };
    let model = SeqFm::new(&mut params, &mut rng, &layout, model_cfg);
    let train_cfg =
        TrainConfig { epochs: 5, batch_size: 128, lr: 5e-3, max_seq, ..Default::default() };
    let report =
        seqfm_core::train_ranking(&model, &mut params, &split, &layout, &sampler, &train_cfg);
    println!(
        "trained SeqFM over {} items: loss {:.4} -> {:.4}",
        layout.n_items,
        report.epoch_losses[0],
        report.final_loss()
    );

    // ---- Build the catalog index and attach it to an engine ---------------
    // The index pre-computes per-item linear partials and per-block bound
    // envelopes once; block 64 keeps each scan batch cache-resident.
    let frozen = Arc::new(FrozenSeqFm::freeze(&model, &params));
    let t = Instant::now();
    let index = Arc::new(CatalogIndex::build(Arc::clone(&frozen), layout, 64));
    println!(
        "catalog index: {} items in {} blocks, built in {:.1} ms",
        index.n_items(),
        index.n_blocks(),
        t.elapsed().as_secs_f64() * 1e3
    );
    let engine_cfg =
        EngineConfig::builder().threads(2).max_seq(max_seq).build().expect("valid config");
    let engine = Engine::new(Arc::clone(&frozen), layout, engine_cfg)
        .expect("valid engine")
        .with_catalog_index(Arc::clone(&index));

    // ---- Stream history, then retrieve over the whole catalog --------------
    let user = 11u32;
    for item in [3u32, 250, 41, 77] {
        engine.append_event(user, item).expect("known ids");
    }
    let t = Instant::now();
    let top = engine.retrieve_top_k(user, 10).expect("valid retrieval");
    println!(
        "top-10 of {} items in {:.2} ms ({} blocks scored, {} pruned — {:.0}% of the catalog \
         never touched):",
        index.n_items(),
        t.elapsed().as_secs_f64() * 1e3,
        top.blocks_scored,
        top.blocks_pruned,
        top.prune_rate() * 100.0
    );
    for (rank, s) in top.items.iter().enumerate() {
        println!("  #{:<2} item {:<4} logit {:+.4}", rank + 1, s.item, s.score);
    }

    // ---- The prune is exact: same ids, same bits as brute force ------------
    // Rebuild the canonical history row exactly as the engine does, then
    // score every block with no pruning.
    let hist = engine.history(user).expect("known user");
    let window = &hist[hist.len() - hist.len().min(max_seq)..];
    let mut row = vec![seqfm_data::PAD; max_seq - window.len()];
    row.extend(window.iter().map(|&it| it as i64));
    let view = frozen.history_view(&row, &mut seqfm_core::Scratch::new());
    let brute = index.retrieve_brute(user, &view, 10).expect("valid retrieval");
    assert!(top
        .items
        .iter()
        .zip(&brute.items)
        .all(|(a, b)| a.item == b.item && a.score.to_bits() == b.score.to_bits()));
    println!("pruned result == brute force, bit for bit");

    // ---- A fresh click re-ranks immediately --------------------------------
    let clicked = top.items[0].item;
    engine.append_event(user, clicked).expect("known ids");
    let rescored = engine.retrieve_top_k(user, 10).expect("valid retrieval");
    println!(
        "after clicking item {clicked}: new top item {} (logit {:+.4})",
        rescored.items[0].item, rescored.items[0].score
    );
}
