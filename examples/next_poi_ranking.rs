//! Next-POI recommendation (the paper's ranking task, §IV-A) with a
//! head-to-head between the two sequence-aware contenders: SeqFM and TFM
//! (translation-based FM, which sees only the last POI). Also demonstrates
//! producing an actual top-K recommendation list for one user.
//!
//! ```text
//! cargo run --release --example next_poi_ranking
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_baselines::Tfm;
use seqfm_core::{
    evaluate_ranking, train_ranking, RankingEvalConfig, SeqFm, SeqFmConfig, SeqModel, TrainConfig,
};
use seqfm_data::{
    build_instance, ranking::RankingConfig, Batch, FeatureLayout, LeaveOneOut, NegativeSampler,
    Scale,
};

fn main() {
    let mut gen_cfg = RankingConfig::gowalla(Scale::Small);
    gen_cfg.n_users = 60;
    gen_cfg.n_items = 150;
    let dataset = seqfm_data::ranking::generate(&gen_cfg).expect("valid config");
    let split = LeaveOneOut::split(&dataset);
    let layout = FeatureLayout::of(&dataset);
    let seen: Vec<Vec<u32>> = (0..dataset.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(dataset.n_items, seen.clone());

    let train_cfg =
        TrainConfig { epochs: 30, batch_size: 128, lr: 5e-3, max_seq: 12, ..Default::default() };
    let eval_cfg = RankingEvalConfig { negatives: 100, max_seq: 12, ..Default::default() };

    // SeqFM
    let mut seqfm_ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let seqfm_cfg = SeqFmConfig { d: 16, max_seq: 12, ..Default::default() };
    let seqfm = SeqFm::new(&mut seqfm_ps, &mut rng, &layout, seqfm_cfg);
    train_ranking(&seqfm, &mut seqfm_ps, &split, &layout, &sampler, &train_cfg);
    let seqfm_acc = evaluate_ranking(&seqfm, &seqfm_ps, &split, &layout, &sampler, &eval_cfg);

    // TFM
    let mut tfm_ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let tfm = Tfm::new(&mut tfm_ps, &mut rng, &layout, 16);
    train_ranking(&tfm, &mut tfm_ps, &split, &layout, &sampler, &train_cfg);
    let tfm_acc = evaluate_ranking(&tfm, &tfm_ps, &split, &layout, &sampler, &eval_cfg);

    println!("{:<8} {:>8} {:>8}", "model", "HR@10", "NDCG@10");
    println!("{:<8} {:>8.3} {:>8.3}", "TFM", tfm_acc.hr(10), tfm_acc.ndcg(10));
    println!("{:<8} {:>8.3} {:>8.3}", "SeqFM", seqfm_acc.hr(10), seqfm_acc.ndcg(10));

    // A concrete recommendation list for user 0: score every unvisited POI
    // given their full history and print the top 5.
    let user = 0u32;
    let history = split.history_for_test(user as usize);
    let unseen: Vec<u32> =
        (0..dataset.n_items as u32).filter(|i| !seen[user as usize].contains(i)).collect();
    let instances: Vec<_> =
        unseen.iter().map(|&poi| build_instance(&layout, user, poi, &history, 12, 0.0)).collect();
    let batch = Batch::try_from_instances(&instances).expect("valid batch");
    let mut g = Graph::new();
    let scores = seqfm.forward(&mut g, &seqfm_ps, &batch, false, &mut rng);
    let mut ranked: Vec<(u32, f32)> =
        unseen.iter().copied().zip(g.value(scores).data().iter().copied()).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    println!(
        "user {user}: last visits {:?} -> top-5 recommended POIs: {:?}",
        &history[history.len().saturating_sub(3)..],
        ranked.iter().take(5).map(|(p, _)| *p).collect::<Vec<_>>()
    );
}
