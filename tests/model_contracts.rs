//! Cross-crate contracts: every model in the registry honours the `SeqModel`
//! interface and its documented sequence semantics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_baselines::registry::{build, ModelKind};
use seqfm_core::SeqModel;
use seqfm_data::{build_instance, Batch, FeatureLayout};

const ALL: [ModelKind; 12] = [
    ModelKind::Fm,
    ModelKind::WideDeep,
    ModelKind::DeepCross,
    ModelKind::Nfm,
    ModelKind::Afm,
    ModelKind::SasRec,
    ModelKind::Tfm,
    ModelKind::Din,
    ModelKind::XDeepFm,
    ModelKind::Rrn,
    ModelKind::Hofm,
    ModelKind::SeqFm,
];

/// Models whose score must change when the history *order* changes
/// (position-aware or recurrence-based).
const ORDER_SENSITIVE: [ModelKind; 3] = [ModelKind::SasRec, ModelKind::Rrn, ModelKind::SeqFm];

fn layout() -> FeatureLayout {
    FeatureLayout { n_users: 8, n_items: 20 }
}

fn score(model: &dyn SeqModel, ps: &ParamStore, hist: &[u32]) -> f32 {
    let inst = build_instance(&layout(), 1, 5, hist, 6, 1.0);
    let b = Batch::try_from_instances(&[inst]).expect("valid batch");
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = Graph::new();
    let y = model.forward(&mut g, ps, &b, false, &mut rng);
    g.value(y).data()[0]
}

#[test]
fn every_model_is_inference_deterministic() {
    for kind in ALL {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let model = build(kind, &mut ps, &mut rng, &layout(), 8, 6);
        let a = score(model.as_ref(), &ps, &[2, 7, 11]);
        let b = score(model.as_ref(), &ps, &[2, 7, 11]);
        assert_eq!(a, b, "{kind:?} is non-deterministic at inference");
        assert!(a.is_finite(), "{kind:?} emitted non-finite score");
    }
}

#[test]
fn order_sensitivity_matches_model_class() {
    for kind in ALL {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let model = build(kind, &mut ps, &mut rng, &layout(), 8, 6);
        // same multiset, different order, same last item (so TFM is also
        // expected to be invariant here)
        let a = score(model.as_ref(), &ps, &[2, 7, 11, 4]);
        let b = score(model.as_ref(), &ps, &[11, 7, 2, 4]);
        let sensitive = ORDER_SENSITIVE.contains(&kind);
        if sensitive {
            assert!(
                (a - b).abs() > 1e-7,
                "{kind:?} should be order-sensitive but scored {a} == {b}"
            );
        } else {
            assert!(
                (a - b).abs() < 1e-4,
                "{kind:?} should be order-invariant but scored {a} vs {b}"
            );
        }
    }
}

#[test]
fn every_model_reacts_to_the_candidate() {
    for kind in ALL {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let model = build(kind, &mut ps, &mut rng, &layout(), 8, 6);
        let l = layout();
        let mk = |cand: u32| {
            let inst = build_instance(&l, 1, cand, &[2, 7], 6, 1.0);
            Batch::try_from_instances(&[inst]).expect("valid batch")
        };
        let mut g = Graph::new();
        let mut rng2 = StdRng::seed_from_u64(0);
        let b5 = mk(5);
        let b9 = mk(9);
        let y5 = model.forward(&mut g, &ps, &b5, false, &mut rng2);
        let y9 = model.forward(&mut g, &ps, &b9, false, &mut rng2);
        let (a, b) = (g.value(y5).data()[0], g.value(y9).data()[0]);
        assert!((a - b).abs() > 1e-8, "{kind:?} ignores the candidate item");
    }
}

#[test]
fn every_model_trains_one_step_without_panic() {
    use seqfm_core::{train_ranking, TrainConfig};
    use seqfm_data::{LeaveOneOut, NegativeSampler, Scale};
    let mut cfg = seqfm_data::ranking::RankingConfig::gowalla(Scale::Small);
    cfg.n_users = 10;
    cfg.n_items = 20;
    cfg.n_clusters = 5;
    cfg.min_len = 5;
    cfg.max_len = 8;
    let ds = seqfm_data::ranking::generate(&cfg).expect("valid");
    let split = LeaveOneOut::split(&ds);
    let l = FeatureLayout::of(&ds);
    let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(ds.n_items, seen);
    for kind in ALL {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let model = build(kind, &mut ps, &mut rng, &l, 4, 6);
        let tc =
            TrainConfig { epochs: 1, batch_size: 32, lr: 1e-3, max_seq: 6, ..Default::default() };
        let report = train_ranking(model.as_ref(), &mut ps, &split, &l, &sampler, &tc);
        assert_eq!(report.epoch_losses.len(), 1, "{kind:?}");
        assert!(report.final_loss().is_finite(), "{kind:?} diverged in one epoch");
        assert!(!ps.has_non_finite(), "{kind:?} produced non-finite parameters");
    }
}
