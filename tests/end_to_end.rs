//! End-to-end integration tests spanning the whole workspace: data
//! generation → splitting → training → evaluation → checkpointing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{
    evaluate_ctr, evaluate_ranking, evaluate_rating, train_ctr, train_ranking, train_rating,
    RankingEvalConfig, SeqFm, SeqFmConfig, TrainConfig,
};
use seqfm_data::{FeatureLayout, LeaveOneOut, NegativeSampler, Scale};
use seqfm_nn::checkpoint;

fn ranking_setup() -> (seqfm_data::Dataset, LeaveOneOut, FeatureLayout, NegativeSampler) {
    let mut cfg = seqfm_data::ranking::RankingConfig::gowalla(Scale::Small);
    cfg.n_users = 40;
    cfg.n_items = 100;
    cfg.min_len = 8;
    cfg.max_len = 16;
    let ds = seqfm_data::ranking::generate(&cfg).expect("valid");
    let split = LeaveOneOut::split(&ds);
    let layout = FeatureLayout::of(&ds);
    let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(ds.n_items, seen);
    (ds, split, layout, sampler)
}

#[test]
fn ranking_pipeline_beats_chance_and_roundtrips_checkpoints() {
    let (_, split, layout, sampler) = ranking_setup();
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = SeqFmConfig { d: 8, max_seq: 10, dropout: 0.2, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
    let tc =
        TrainConfig { epochs: 25, batch_size: 128, lr: 8e-3, max_seq: 10, ..Default::default() };
    train_ranking(&model, &mut ps, &split, &layout, &sampler, &tc);

    let ec = RankingEvalConfig { negatives: 50, max_seq: 10, ..Default::default() };
    let acc = evaluate_ranking(&model, &ps, &split, &layout, &sampler, &ec);
    let chance = 10.0 / 51.0;
    assert!(acc.hr(10) > chance, "HR@10 {:.3} below chance {:.3}", acc.hr(10), chance);

    // checkpoint → scramble → restore → identical evaluation
    let blob = checkpoint::save(&ps);
    for id in ps.ids() {
        for v in ps.value_mut(id).data_mut() {
            *v = -1.0;
        }
    }
    checkpoint::load(&mut ps, &blob).expect("restore");
    let acc2 = evaluate_ranking(&model, &ps, &split, &layout, &sampler, &ec);
    assert_eq!(acc.hr(10), acc2.hr(10));
    assert_eq!(acc.ndcg(20), acc2.ndcg(20));
}

#[test]
fn ctr_pipeline_beats_chance() {
    let mut cfg = seqfm_data::ctr::CtrConfig::taobao(Scale::Small);
    cfg.n_users = 40;
    cfg.n_items = 100;
    cfg.min_len = 8;
    cfg.max_len = 16;
    let ds = seqfm_data::ctr::generate(&cfg).expect("valid");
    let split = LeaveOneOut::split(&ds);
    let layout = FeatureLayout::of(&ds);
    let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(ds.n_items, seen);

    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let mcfg = SeqFmConfig { d: 8, max_seq: 10, dropout: 0.2, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &layout, mcfg);
    let tc =
        TrainConfig { epochs: 20, batch_size: 120, lr: 8e-3, max_seq: 10, ..Default::default() };
    let report = train_ctr(&model, &mut ps, &split, &layout, &sampler, &tc);
    assert!(report.final_loss() < report.epoch_losses[0]);

    let ev = evaluate_ctr(&model, &ps, &split, &layout, &sampler, 10, 3);
    assert!(ev.auc > 0.55, "AUC {:.3} barely above chance", ev.auc);
    assert!(ev.rmse < 0.7, "RMSE {:.3} implausible", ev.rmse);
}

#[test]
fn rating_pipeline_beats_constant_predictor() {
    // Give the model enough per-item signal to beat the constant baseline —
    // with fewer users/shorter histories the bar below measures dataset
    // luck, not learning (cf. the same sizing in examples/rating_regression).
    let mut cfg = seqfm_data::rating::RatingConfig::beauty(Scale::Small);
    cfg.n_users = 64;
    cfg.n_items = 140;
    let ds = seqfm_data::rating::generate(&cfg).expect("valid");
    let split = LeaveOneOut::split(&ds);
    let layout = FeatureLayout::of(&ds);

    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let mcfg = SeqFmConfig { d: 8, max_seq: 10, dropout: 0.3, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &layout, mcfg);
    let tc =
        TrainConfig { epochs: 30, batch_size: 128, lr: 5e-3, max_seq: 10, ..Default::default() };
    let report = train_rating(&model, &mut ps, &split, &layout, &tc);

    let ev = evaluate_rating(&model, &ps, &split, &layout, 10, report.target_offset);
    let constant = vec![report.target_offset; split.test.len()];
    let truth: Vec<f32> = split.test.iter().map(|e| e.rating).collect();
    let base_mae = seqfm_metrics::mae(&constant, &truth);
    assert!(ev.mae < base_mae + 0.02, "MAE {:.3} vs constant baseline {:.3}", ev.mae, base_mae);
}

#[test]
fn full_run_is_deterministic_across_processes_logic() {
    // Same seeds → byte-identical losses and metrics.
    let (_, split, layout, sampler) = ranking_setup();
    let run = || {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(77);
        let cfg = SeqFmConfig { d: 8, max_seq: 10, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let tc =
            TrainConfig { epochs: 3, batch_size: 128, lr: 5e-3, max_seq: 10, ..Default::default() };
        let rep = train_ranking(&model, &mut ps, &split, &layout, &sampler, &tc);
        let ec = RankingEvalConfig { negatives: 30, max_seq: 10, ..Default::default() };
        let acc = evaluate_ranking(&model, &ps, &split, &layout, &sampler, &ec);
        (rep.epoch_losses.clone(), acc.hr(10), acc.ndcg(10))
    };
    assert_eq!(run(), run());
}
