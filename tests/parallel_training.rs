//! Data-parallel training contracts.
//!
//! * `workers == 1` must reproduce the **serial** loss trajectory bit for
//!   bit — asserted against an independently written reference loop that
//!   re-implements the §IV BPR training semantics from public APIs, so a
//!   regression that silently reroutes the single-worker path through the
//!   sharded machinery (different RNG streams!) is caught immediately.
//! * `workers == 4` must be deterministic (the trajectory is a pure
//!   function of the config, never of thread scheduling) and must train as
//!   well as serial within tolerance.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_core::{
    train_ctr, train_ranking, train_rating, SeqFm, SeqFmConfig, SeqModel, TrainConfig,
};
use seqfm_data::{
    build_instance, ranking::RankingConfig, Batch, FeatureLayout, LeaveOneOut, NegativeSampler,
    Scale,
};
use seqfm_nn::{Adam, Optimizer};

fn tiny_ranking_setup() -> (LeaveOneOut, FeatureLayout, NegativeSampler) {
    let mut cfg = RankingConfig::gowalla(Scale::Small);
    cfg.n_users = 24;
    cfg.n_items = 60;
    cfg.min_len = 6;
    cfg.max_len = 12;
    let ds = seqfm_data::ranking::generate(&cfg).unwrap();
    let split = LeaveOneOut::split(&ds);
    let layout = FeatureLayout::of(&ds);
    let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(ds.n_items, seen);
    (split, layout, sampler)
}

fn fresh_model(layout: &FeatureLayout) -> (SeqFm, ParamStore) {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(33);
    let cfg = SeqFmConfig { d: 8, max_seq: 8, dropout: 0.1, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, layout, cfg);
    (model, ps)
}

fn train_cfg(workers: usize) -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 32,
        lr: 1e-2,
        max_seq: 8,
        ctr_negatives: 3,
        seed: 11,
        workers,
    }
}

/// An independent re-implementation of the serial BPR loop (paper §IV-A):
/// one continuous RNG stream seeded from `cfg.seed` drives shuffling,
/// negative sampling, and dropout, exactly as the pre-parallel trainer did.
fn reference_serial_ranking(
    model: &SeqFm,
    ps: &mut ParamStore,
    split: &LeaveOneOut,
    layout: &FeatureLayout,
    sampler: &NegativeSampler,
    cfg: &TrainConfig,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut positions: Vec<(usize, usize)> = Vec::new();
    for (u, seq) in split.train.iter().enumerate() {
        for i in 1..seq.len() {
            positions.push((u, i));
        }
    }
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        positions.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in positions.chunks(cfg.batch_size) {
            let mut pos = Vec::with_capacity(chunk.len());
            let mut neg = Vec::with_capacity(chunk.len());
            for &(u, i) in chunk {
                let hist: Vec<u32> = split.train[u][..i].iter().map(|e| e.item).collect();
                let target = split.train[u][i].item;
                let negative = sampler.sample(u, &mut rng);
                pos.push(build_instance(layout, u as u32, target, &hist, cfg.max_seq, 1.0));
                neg.push(build_instance(layout, u as u32, negative, &hist, cfg.max_seq, 0.0));
            }
            let pb = Batch::try_from_instances(&pos).unwrap();
            let nb = Batch::try_from_instances(&neg).unwrap();
            let mut g = Graph::new();
            let y_pos = model.forward(&mut g, ps, &pb, true, &mut rng);
            let y_neg = model.forward(&mut g, ps, &nb, true, &mut rng);
            let diff = g.sub(y_pos, y_neg);
            let ndiff = g.neg(diff);
            let per = g.softplus(ndiff);
            let loss = g.mean_all(per);
            epoch_loss += g.scalar_value(loss) as f64;
            batches += 1;
            ps.zero_grads();
            g.backward(loss, ps);
            opt.step(ps).expect("finite gradients");
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f64);
    }
    epoch_losses
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: epoch count differs");
    for (e, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: epoch {e} loss diverges ({x} vs {y})");
    }
}

#[test]
fn one_worker_reproduces_the_serial_trajectory_bit_for_bit() {
    let (split, layout, sampler) = tiny_ranking_setup();
    let (model, ps) = fresh_model(&layout);
    let cfg = train_cfg(1);

    let mut ps_trainer = ps.worker_clone();
    let report = train_ranking(&model, &mut ps_trainer, &split, &layout, &sampler, &cfg);

    let mut ps_reference = ps.worker_clone();
    let expect =
        reference_serial_ranking(&model, &mut ps_reference, &split, &layout, &sampler, &cfg);

    assert_bitwise_eq(&report.epoch_losses, &expect, "workers=1 vs serial reference");
    // Not just losses: every trained parameter must match bit for bit.
    for (id, p) in ps_trainer.iter() {
        let want = ps_reference.value(id);
        for (i, (a, b)) in p.value().data().iter().zip(want.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "param `{}`[{}] diverges ({a} vs {b})",
                p.name(),
                i
            );
        }
    }
}

#[test]
fn four_workers_are_deterministic_and_train_within_tolerance() {
    let (split, layout, sampler) = tiny_ranking_setup();
    let (model, ps) = fresh_model(&layout);

    let run = |workers: usize| {
        let mut ps_run = ps.worker_clone();
        train_ranking(&model, &mut ps_run, &split, &layout, &sampler, &train_cfg(workers))
    };

    let serial = run(1);
    let par_a = run(4);
    let par_b = run(4);

    // Deterministic: shard layout + per-shard RNG streams + ordered
    // all-reduce make the trajectory independent of thread scheduling.
    assert_bitwise_eq(&par_a.epoch_losses, &par_b.epoch_losses, "workers=4 repeat");

    // Trains: the loss goes down, and lands near the serial result. The
    // trajectories differ (different RNG streams), so this is a tolerance
    // check, not an equality.
    assert!(
        par_a.final_loss() < par_a.epoch_losses[0],
        "parallel loss did not decrease: {:?}",
        par_a.epoch_losses
    );
    let rel = (par_a.final_loss() - serial.final_loss()).abs() / serial.final_loss();
    assert!(
        rel < 0.35,
        "workers=4 final loss {:.4} too far from serial {:.4} (rel {rel:.3})",
        par_a.final_loss(),
        serial.final_loss()
    );
    assert_eq!(par_a.steps, serial.steps, "same step count regardless of workers");
}

#[test]
fn parallel_ctr_and_rating_are_deterministic_and_learn() {
    let (split, layout, sampler) = tiny_ranking_setup();
    let (model, ps) = fresh_model(&layout);
    let cfg = train_cfg(4);

    let run_ctr = || {
        let mut ps_run = ps.worker_clone();
        train_ctr(&model, &mut ps_run, &split, &layout, &sampler, &cfg)
    };
    let a = run_ctr();
    let b = run_ctr();
    assert_bitwise_eq(&a.epoch_losses, &b.epoch_losses, "ctr workers=4 repeat");
    assert!(a.final_loss() < a.epoch_losses[0], "ctr loss did not decrease");

    let run_rating = || {
        let mut ps_run = ps.worker_clone();
        train_rating(&model, &mut ps_run, &split, &layout, &cfg)
    };
    let a = run_rating();
    let b = run_rating();
    assert_bitwise_eq(&a.epoch_losses, &b.epoch_losses, "rating workers=4 repeat");
    assert!(a.final_loss() < a.epoch_losses[0], "rating loss did not decrease");
    assert!(a.target_offset != 0.0, "rating offset centring must be active");
}
