//! Workspace smoke test: every `seqfm_repro` re-export is usable, and the
//! `seqfm_core` quickstart path (the crate's front-page doctest) runs end to
//! end — data generation → instance/batch construction → forward pass →
//! a short training run → evaluation — entirely through the umbrella crate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_repro::autograd::{Graph, ParamStore};
use seqfm_repro::core::{
    evaluate_ranking, train_ranking, RankingEvalConfig, SeqFm, SeqFmConfig, SeqModel, TrainConfig,
};
use seqfm_repro::data::{
    build_instance, Batch, FeatureLayout, LeaveOneOut, NegativeSampler, Scale,
};
use seqfm_repro::tensor::{Shape, Tensor};

#[test]
fn umbrella_reexports_are_usable() {
    // tensor
    let t = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
    assert_eq!(t.numel(), 4);

    // autograd
    let mut ps = ParamStore::new();
    let w = ps.add_dense("w", Tensor::from_vec(Shape::d2(2, 1), vec![0.5, -0.5]));
    let mut g = Graph::new();
    let x = g.input(t);
    let wv = g.param(&ps, w);
    let y = g.matmul(x, wv);
    let loss = g.mean_all(y);
    g.backward(loss, &mut ps);
    assert_eq!(ps.grad(w).shape(), Shape::d2(2, 1));

    // nn: checkpoint round-trip through the re-export
    let blob = seqfm_repro::nn::checkpoint::save(&ps);
    seqfm_repro::nn::checkpoint::load(&mut ps, &blob).expect("roundtrip");

    // metrics
    assert!((seqfm_repro::metrics::mae(&[1.0, 2.0], &[1.0, 4.0]) - 1.0).abs() < 1e-6);

    // baselines: the registry exposes each paper table's roster
    assert!(!seqfm_repro::baselines::registry::ranking_models().is_empty());

    // bench harness: serial job runner
    let out = seqfm_repro::bench_harness::run_jobs(3, true, |i| i * 2);
    assert_eq!(out, vec![0, 2, 4]);
}

#[test]
fn core_quickstart_path_runs_end_to_end() {
    // The `seqfm_core` front-page quickstart, via umbrella paths.
    let layout = FeatureLayout { n_users: 10, n_items: 20 };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = SeqFmConfig { d: 8, max_seq: 5, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);

    let inst = build_instance(&layout, 3, 7, &[1, 4, 2], 5, 1.0);
    let batch = Batch::try_from_instances(&[inst]).expect("valid batch");
    let mut g = Graph::new();
    let score = model.forward(&mut g, &ps, &batch, false, &mut rng);
    assert_eq!(g.value(score).numel(), 1);

    // Continue past the doctest: a short real train/eval cycle.
    let mut gen_cfg = seqfm_repro::data::ranking::RankingConfig::gowalla(Scale::Small);
    gen_cfg.n_users = 12;
    gen_cfg.n_items = 30;
    gen_cfg.min_len = 5;
    gen_cfg.max_len = 8;
    let ds = seqfm_repro::data::ranking::generate(&gen_cfg).expect("valid config");
    let split = LeaveOneOut::split(&ds);
    let layout = FeatureLayout::of(&ds);
    let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(ds.n_items, seen);

    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let model = SeqFm::new(
        &mut ps,
        &mut rng,
        &layout,
        SeqFmConfig { d: 4, max_seq: 5, ..Default::default() },
    );
    let tc = TrainConfig { epochs: 2, batch_size: 32, lr: 3e-3, max_seq: 5, ..Default::default() };
    let report = train_ranking(&model, &mut ps, &split, &layout, &sampler, &tc);
    assert_eq!(report.epoch_losses.len(), 2);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));

    let ec = RankingEvalConfig { negatives: 10, max_seq: 5, ..Default::default() };
    let acc = evaluate_ranking(&model, &ps, &split, &layout, &sampler, &ec);
    assert_eq!(acc.cases(), 12);
    let hr = acc.hr(10);
    assert!((0.0..=1.0).contains(&hr), "HR@10 out of range: {hr}");
}
