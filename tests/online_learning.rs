//! End-to-end contracts of the online-learning loop: versioned epochs
//! threading from the incremental trainer through the engine's atomic
//! hot-swap into the epoch-keyed caches and the per-epoch catalog index.
//!
//! The properties under test:
//!
//! * **hot-swap correctness** — after `publish_frozen`, a warm engine
//!   (stale cached views and all) serves the new model bit-identically to a
//!   cold engine built directly on it. This is the regression test for the
//!   view-cache epoch key: a `(user, version)`-only cache would replay the
//!   *old* model's history panels into post-swap scores.
//! * **swap-under-load atomicity** — while models swap mid-traffic, every
//!   response is bit-identical to a single-epoch rescore under the epoch it
//!   reports; no response ever mixes revisions.
//! * **mid-swap retrieval** — the brute-force fallback with the freshly
//!   published model, the incrementally rebuilt index
//!   (`CatalogIndex::rebuild_for`), and a from-scratch index all return the
//!   same bits.
//! * **rollback** — republishing a retained epoch restores its serving
//!   behaviour exactly, original epoch stamp included.
//! * **reduced precision** — a `Fast`-profile engine re-quantizes on
//!   publish; post-swap responses match a direct reduced-precision rescore.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{Ablation, FrozenSeqFm, ModelEpoch, ScorerPrecision, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::FeatureLayout;
use seqfm_serve::{
    score_request, CatalogIndex, Engine, EngineConfig, Retrieval, ScoreRequest, ScoreResponse,
};
use seqfm_train::{OnlineConfig, OnlineTrainer};
use std::collections::HashMap;
use std::sync::Arc;

const MAX_SEQ: usize = 6;

fn layout() -> FeatureLayout {
    FeatureLayout { n_users: 6, n_items: 40 }
}

fn build_model(seed: u64) -> (SeqFm, ParamStore) {
    let cfg = SeqFmConfig {
        d: 8,
        max_seq: MAX_SEQ,
        dropout: 0.5,
        ablation: Ablation::default(),
        ..Default::default()
    };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
    (model, ps)
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig { batch_size: 4, publish_every: 2, max_seq: MAX_SEQ, ..Default::default() }
}

fn engine_cfg() -> EngineConfig {
    EngineConfig::builder().threads(2).max_seq(MAX_SEQ).build().expect("valid config")
}

/// A deterministic synthetic event stream over the test layout.
fn stream(n: usize) -> Vec<(u32, u32)> {
    (0..n).map(|i| ((i % 6) as u32, ((i * 7 + 3) % 40) as u32)).collect()
}

fn assert_responses_bit_identical(a: &ScoreResponse, b: &ScoreResponse, what: &str) {
    assert_eq!(a.epoch, b.epoch, "{what}: epochs differ");
    assert_eq!(a.ranked.len(), b.ranked.len(), "{what}: lengths differ");
    for (ra, rb) in a.ranked.iter().zip(&b.ranked) {
        assert_eq!(ra.item, rb.item, "{what}: items differ");
        assert_eq!(
            ra.score.to_bits(),
            rb.score.to_bits(),
            "{what}: score bits differ on item {} ({} vs {})",
            ra.item,
            ra.score,
            rb.score
        );
    }
}

fn assert_retrievals_bit_identical(a: &Retrieval, b: &Retrieval, what: &str) {
    assert_eq!(a.items.len(), b.items.len(), "{what}: lengths differ");
    for (rank, (ia, ib)) in a.items.iter().zip(&b.items).enumerate() {
        assert_eq!(ia.item, ib.item, "{what}: item diverges at rank {rank}");
        assert_eq!(
            ia.score.to_bits(),
            ib.score.to_bits(),
            "{what}: score bits diverge at rank {rank} (item {})",
            ia.item
        );
    }
}

/// Hot-swap + epoch-keyed view cache: a warm engine that scored (and
/// cached) under the old model must, after `publish_frozen`, serve the new
/// model bit-identically to a cold engine built directly on it — the
/// cached history panels of the old epoch may never leak into new-epoch
/// scores, and the response's epoch stamp must advance.
#[test]
fn hot_swap_serves_the_new_model_bit_for_bit_vs_a_cold_engine() {
    let (model, ps) = build_model(3);
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    let engine =
        Engine::new_frozen(frozen, layout(), engine_cfg()).expect("valid").with_event_log();

    let events = stream(8);
    for &(u, i) in &events {
        engine.append_event(u, i).expect("known ids");
    }
    let candidates: Vec<u32> = vec![7, 9, 11, 0, 33];
    // Warm the view cache under the initial (ZERO) epoch for every user.
    for u in 0..6 {
        let r = engine.score_stored(u, candidates.clone()).expect("valid");
        assert_eq!(r.epoch, ModelEpoch::ZERO);
    }

    // One pump: 8 logged events = 2 minibatches of 4 = 1 published epoch.
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let published = trainer.pump(&engine);
    assert_eq!(published, vec![ModelEpoch(1)], "8 events publish exactly e1");
    assert_eq!(engine.current_epoch(), ModelEpoch(1));

    // Cold reference: a fresh engine on the published model with the same
    // histories and a never-used cache.
    let cold = Engine::new_frozen(
        trainer.frozen_for(trainer.latest_snapshot().expect("published")),
        layout(),
        engine_cfg(),
    )
    .expect("valid");
    for &(u, i) in &events {
        cold.append_event(u, i).expect("known ids");
    }

    for u in 0..6 {
        let warm = engine.score_stored(u, candidates.clone()).expect("valid");
        let fresh = cold.score_stored(u, candidates.clone()).expect("valid");
        assert_eq!(warm.epoch, ModelEpoch(1), "post-swap responses carry the new epoch");
        assert_responses_bit_identical(&warm, &fresh, &format!("user {u} post-swap"));
    }
}

/// Swap-under-load: scoring threads hammer the engine while the main
/// thread publishes a sequence of epochs. Every response must be
/// bit-identical to a single-epoch rescore under the epoch it reports —
/// the engine may serve an older or newer revision at any instant, but
/// never a mixture.
#[test]
fn swap_under_load_every_response_is_single_epoch_consistent() {
    let (model, ps) = build_model(3);
    let initial = Arc::new(FrozenSeqFm::freeze(&model, &ps));

    // Pre-train the revision sequence so every epoch's exact bits are known.
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(32)); // e1..e4
    let mut by_epoch: HashMap<u64, Arc<FrozenSeqFm>> = HashMap::new();
    by_epoch.insert(0, Arc::clone(&initial));
    for snap in &snapshots {
        by_epoch.insert(snap.epoch().get(), Arc::new(trainer.frozen_for(snap)));
    }

    let cfg = EngineConfig::builder()
        .threads(3)
        .max_seq(MAX_SEQ)
        .top_k(4)
        .linger_us(5)
        .build()
        .expect("valid config");
    let engine = Arc::new(Engine::new(Arc::clone(&initial), layout(), cfg).expect("valid"));

    // Inline-history requests so any response can be rescored exactly later
    // regardless of when stores/appends happened around it.
    let make_req = |t: usize, i: usize| {
        let hist: Vec<u32> = (0..4).map(|j| ((i * 5 + j * 3 + t) % 40) as u32).collect();
        let cands: Vec<u32> = (0..6).map(|c| ((c * 7 + i) % 40) as u32).collect();
        ScoreRequest::inline(((t + i) % 6) as u32, hist, cands)
    };

    let scorers: Vec<_> = (0..2)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut out: Vec<(ScoreRequest, ScoreResponse)> = Vec::new();
                for i in 0..150 {
                    let req = make_req(t, i);
                    let resp = engine.score(req.clone()).expect("valid request");
                    out.push((req, resp));
                }
                out
            })
        })
        .collect();

    // Publish every revision (including re-publishing older ones — the
    // slot is last-write-wins, not monotone) while traffic is in flight.
    for snap in &snapshots {
        let m = &by_epoch[&snap.epoch().get()];
        engine.publish(Arc::clone(m));
        std::thread::yield_now();
    }
    engine.publish(Arc::clone(&by_epoch[&snapshots[0].epoch().get()]));
    engine.publish(Arc::clone(&by_epoch[&snapshots.last().expect("published").epoch().get()]));

    let mut checked = 0usize;
    let mut scratch = Scratch::new();
    for h in scorers {
        for (req, resp) in h.join().expect("scorer thread") {
            let model = by_epoch
                .get(&resp.epoch.get())
                .unwrap_or_else(|| panic!("response under unknown epoch {}", resp.epoch));
            let reference =
                score_request(model.as_ref(), &layout(), MAX_SEQ, 4, &req, &mut scratch)
                    .expect("valid request");
            assert_responses_bit_identical(&resp, &reference, "under-load response");
            checked += 1;
        }
    }
    assert_eq!(checked, 300);
}

/// Mid-swap retrieval parity: with the index still built for the old
/// epoch, the brute-force fallback scored by the *new* model must match
/// both the incrementally rebuilt index and a from-scratch index — same
/// items, same logit bits. This is the soundness test for
/// `CatalogIndex::rebuild_for`'s reuse of old block membership.
#[test]
fn mid_swap_brute_fallback_and_rebuilt_index_match_a_fresh_build() {
    let (model, ps) = build_model(9);
    let old = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(16)); // e1, e2
    let new = Arc::new(trainer.frozen_for(snapshots.last().expect("published")));

    let index_old = CatalogIndex::build(Arc::clone(&old), layout(), 16);
    let rebuilt = index_old.rebuild_for(Arc::clone(&new));
    let fresh = CatalogIndex::build(Arc::clone(&new), layout(), 16);

    let mut scratch = Scratch::new();
    for (user, hist) in [(1u32, vec![2i64, 9, 31]), (4, vec![seqfm_data::PAD, 5, 5, 17, 8, 0])] {
        let mut row = vec![seqfm_data::PAD; MAX_SEQ - hist.len()];
        row.extend(&hist);
        let view = new.history_view(&row, &mut scratch);
        let brute = index_old.retrieve_brute_with(&new, user, &view, 10).expect("valid retrieval");
        let via_rebuilt = rebuilt.retrieve(user, &view, 10).expect("valid retrieval");
        let via_fresh = fresh.retrieve(user, &view, 10).expect("valid retrieval");
        assert_retrievals_bit_identical(&brute, &via_fresh, "brute fallback vs fresh index");
        assert_retrievals_bit_identical(&via_rebuilt, &via_fresh, "rebuilt index vs fresh index");
    }
}

/// Engine-level index swap: after `publish_frozen`, `retrieve_top_k` must
/// match a cold engine whose index was built from scratch for the new
/// model — the incremental rebuild and the epoch-keyed view sharing are
/// invisible in the output.
#[test]
fn engine_retrieval_after_publish_matches_a_cold_engine_on_the_new_model() {
    let (model, ps) = build_model(5);
    let old = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let engine = Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), engine_cfg())
        .expect("valid")
        .with_catalog_index(Arc::new(CatalogIndex::build(Arc::clone(&old), layout(), 16)));

    let events = stream(16);
    for &(u, i) in &events {
        engine.append_event(u, i).expect("known ids");
    }
    // Warm retrieval views under the old epoch.
    engine.retrieve_top_k(2, 5).expect("valid retrieval");

    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&events);
    let published = engine.publish_frozen(trainer.frozen_for(snapshots.last().expect("some")));
    assert_eq!(published, engine.current_epoch());
    assert_eq!(
        engine.catalog_index().expect("attached").model().epoch(),
        published,
        "publish_frozen rebuilds the index for the new epoch"
    );

    let new = Arc::new(trainer.frozen_for(snapshots.last().expect("some")));
    let cold = Engine::new_frozen(
        trainer.frozen_for(snapshots.last().expect("some")),
        layout(),
        engine_cfg(),
    )
    .expect("valid")
    .with_catalog_index(Arc::new(CatalogIndex::build(Arc::clone(&new), layout(), 16)));
    for &(u, i) in &events {
        cold.append_event(u, i).expect("known ids");
    }

    for user in 0..6 {
        let warm = engine.retrieve_top_k(user, 5).expect("valid retrieval");
        let fresh = cold.retrieve_top_k(user, 5).expect("valid retrieval");
        assert_retrievals_bit_identical(&warm, &fresh, &format!("user {user} post-swap"));
    }
}

/// Rollback: republishing a retained epoch restores its serving behaviour
/// exactly — same epoch stamp, same bits — even though the trainer (and
/// other epochs) advanced in between.
#[test]
fn rollback_restores_a_prior_epoch_as_served() {
    let (model, ps) = build_model(3);
    let engine = Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), engine_cfg())
        .expect("valid");
    for &(u, i) in &stream(10) {
        engine.append_event(u, i).expect("known ids");
    }

    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(24)); // e1..e3
    assert_eq!(snapshots.len(), 3);

    // Serve each epoch once, recording what user 2 sees under it.
    let candidates: Vec<u32> = vec![1, 8, 22, 39];
    let mut served: HashMap<u64, ScoreResponse> = HashMap::new();
    for snap in &snapshots {
        let epoch = engine.publish_frozen(trainer.frozen_for(snap));
        served.insert(epoch.get(), engine.score_stored(2, candidates.clone()).expect("valid"));
    }
    assert_eq!(engine.current_epoch(), ModelEpoch(3));

    // Roll back to e2: the original stamp comes back, and the response is
    // bit-identical to what e2 served the first time around.
    let rolled = trainer.rollback_to(ModelEpoch(2)).expect("retained");
    assert_eq!(engine.publish_frozen(rolled), ModelEpoch(2));
    assert_eq!(engine.current_epoch(), ModelEpoch(2));
    let replayed = engine.score_stored(2, candidates.clone()).expect("valid");
    assert_responses_bit_identical(&replayed, &served[&2], "rollback replay");
}

/// `ScorerPrecision::Fast` engines re-quantize each published model off
/// the hot path: post-swap responses must match a direct reduced-precision
/// rescore of the new model, and stay at reduced precision (not silently
/// fall back to exact).
#[test]
fn fast_profile_requantizes_on_publish() {
    let (model, ps) = build_model(3);
    let cfg = EngineConfig::builder()
        .threads(1)
        .max_seq(MAX_SEQ)
        .precision(ScorerPrecision::Fast)
        .build()
        .expect("valid config");
    let engine =
        Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), cfg).expect("valid");

    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(8));
    let epoch = engine.publish_frozen(trainer.frozen_for(&snapshots[0]));

    let req = ScoreRequest::inline(1, vec![4, 17, 2], vec![3, 9, 30, 12]);
    let got = engine.score(req.clone()).expect("valid request");
    assert_eq!(got.epoch, epoch);

    let fast = trainer.frozen_for(&snapshots[0]).with_precision(ScorerPrecision::Fast);
    let mut scratch = Scratch::new();
    let want = score_request(&fast, &layout(), MAX_SEQ, 0, &req, &mut scratch).expect("valid");
    assert_responses_bit_identical(&got, &want, "fast-profile post-swap");

    // Sanity: the engine really serves the quantized profile, not exact —
    // the two must differ somewhere on this workload.
    let exact = trainer.frozen_for(&snapshots[0]);
    let want_exact =
        score_request(&exact, &layout(), MAX_SEQ, 0, &req, &mut scratch).expect("valid");
    let any_diff = want
        .ranked
        .iter()
        .zip(&want_exact.ranked)
        .any(|(a, b)| a.item != b.item || a.score.to_bits() != b.score.to_bits());
    assert!(any_diff, "Fast profile should differ from Exact on at least one bit");
}
