//! End-to-end contracts of the online-learning loop: versioned epochs
//! threading from the incremental trainer through the engine's atomic
//! hot-swap into the epoch-keyed caches and the per-epoch catalog index.
//!
//! The properties under test:
//!
//! * **hot-swap correctness** — after `publish_frozen`, a warm engine
//!   (stale cached views and all) serves the new model bit-identically to a
//!   cold engine built directly on it. This is the regression test for the
//!   view-cache epoch key: a `(user, version)`-only cache would replay the
//!   *old* model's history panels into post-swap scores.
//! * **swap-under-load atomicity** — while models swap mid-traffic, every
//!   response is bit-identical to a single-epoch rescore under the epoch it
//!   reports; no response ever mixes revisions.
//! * **mid-swap retrieval** — the brute-force fallback with the freshly
//!   published model, the incrementally rebuilt index
//!   (`CatalogIndex::rebuild_for`), and a from-scratch index all return the
//!   same bits.
//! * **rollback** — republishing a retained epoch restores its serving
//!   behaviour exactly, original epoch stamp included.
//! * **reduced precision** — a `Fast`-profile engine re-quantizes on
//!   publish; post-swap responses match a direct reduced-precision rescore.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{Ablation, FrozenSeqFm, ModelEpoch, ScorerPrecision, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::FeatureLayout;
use seqfm_serve::{
    score_request, CatalogIndex, Engine, EngineConfig, Retrieval, ScoreRequest, ScoreResponse,
};
use seqfm_train::{OnlineConfig, OnlineTrainer};
use std::collections::HashMap;
use std::sync::Arc;

const MAX_SEQ: usize = 6;

fn layout() -> FeatureLayout {
    FeatureLayout { n_users: 6, n_items: 40 }
}

fn build_model(seed: u64) -> (SeqFm, ParamStore) {
    let cfg = SeqFmConfig {
        d: 8,
        max_seq: MAX_SEQ,
        dropout: 0.5,
        ablation: Ablation::default(),
        ..Default::default()
    };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
    (model, ps)
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig { batch_size: 4, publish_every: 2, max_seq: MAX_SEQ, ..Default::default() }
}

fn engine_cfg() -> EngineConfig {
    EngineConfig::builder().threads(2).max_seq(MAX_SEQ).build().expect("valid config")
}

/// A deterministic synthetic event stream over the test layout.
fn stream(n: usize) -> Vec<(u32, u32)> {
    (0..n).map(|i| ((i % 6) as u32, ((i * 7 + 3) % 40) as u32)).collect()
}

fn assert_responses_bit_identical(a: &ScoreResponse, b: &ScoreResponse, what: &str) {
    assert_eq!(a.epoch, b.epoch, "{what}: epochs differ");
    assert_eq!(a.ranked.len(), b.ranked.len(), "{what}: lengths differ");
    for (ra, rb) in a.ranked.iter().zip(&b.ranked) {
        assert_eq!(ra.item, rb.item, "{what}: items differ");
        assert_eq!(
            ra.score.to_bits(),
            rb.score.to_bits(),
            "{what}: score bits differ on item {} ({} vs {})",
            ra.item,
            ra.score,
            rb.score
        );
    }
}

fn assert_retrievals_bit_identical(a: &Retrieval, b: &Retrieval, what: &str) {
    assert_eq!(a.items.len(), b.items.len(), "{what}: lengths differ");
    for (rank, (ia, ib)) in a.items.iter().zip(&b.items).enumerate() {
        assert_eq!(ia.item, ib.item, "{what}: item diverges at rank {rank}");
        assert_eq!(
            ia.score.to_bits(),
            ib.score.to_bits(),
            "{what}: score bits diverge at rank {rank} (item {})",
            ia.item
        );
    }
}

/// Hot-swap + epoch-keyed view cache: a warm engine that scored (and
/// cached) under the old model must, after `publish_frozen`, serve the new
/// model bit-identically to a cold engine built directly on it — the
/// cached history panels of the old epoch may never leak into new-epoch
/// scores, and the response's epoch stamp must advance.
#[test]
fn hot_swap_serves_the_new_model_bit_for_bit_vs_a_cold_engine() {
    let (model, ps) = build_model(3);
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    let engine =
        Engine::new_frozen(frozen, layout(), engine_cfg()).expect("valid").with_event_log();

    let events = stream(8);
    for &(u, i) in &events {
        engine.append_event(u, i).expect("known ids");
    }
    let candidates: Vec<u32> = vec![7, 9, 11, 0, 33];
    // Warm the view cache under the initial (ZERO) epoch for every user.
    for u in 0..6 {
        let r = engine.score_stored(u, candidates.clone()).expect("valid");
        assert_eq!(r.epoch, ModelEpoch::ZERO);
    }

    // One pump: 8 logged events = 2 minibatches of 4 = 1 published epoch.
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let published = trainer.pump(&engine);
    assert_eq!(published, vec![ModelEpoch(1)], "8 events publish exactly e1");
    assert_eq!(engine.current_epoch(), ModelEpoch(1));

    // Cold reference: a fresh engine on the published model with the same
    // histories and a never-used cache.
    let cold = Engine::new_frozen(
        trainer.frozen_for(trainer.latest_snapshot().expect("published")),
        layout(),
        engine_cfg(),
    )
    .expect("valid");
    for &(u, i) in &events {
        cold.append_event(u, i).expect("known ids");
    }

    for u in 0..6 {
        let warm = engine.score_stored(u, candidates.clone()).expect("valid");
        let fresh = cold.score_stored(u, candidates.clone()).expect("valid");
        assert_eq!(warm.epoch, ModelEpoch(1), "post-swap responses carry the new epoch");
        assert_responses_bit_identical(&warm, &fresh, &format!("user {u} post-swap"));
    }
}

/// Swap-under-load: scoring threads hammer the engine while the main
/// thread publishes a sequence of epochs. Every response must be
/// bit-identical to a single-epoch rescore under the epoch it reports —
/// the engine may serve an older or newer revision at any instant, but
/// never a mixture.
#[test]
fn swap_under_load_every_response_is_single_epoch_consistent() {
    let (model, ps) = build_model(3);
    let initial = Arc::new(FrozenSeqFm::freeze(&model, &ps));

    // Pre-train the revision sequence so every epoch's exact bits are known.
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(32)); // e1..e4
    let mut by_epoch: HashMap<u64, Arc<FrozenSeqFm>> = HashMap::new();
    by_epoch.insert(0, Arc::clone(&initial));
    for snap in &snapshots {
        by_epoch.insert(snap.epoch().get(), Arc::new(trainer.frozen_for(snap)));
    }

    let cfg = EngineConfig::builder()
        .threads(3)
        .max_seq(MAX_SEQ)
        .top_k(4)
        .linger_us(5)
        .build()
        .expect("valid config");
    let engine = Arc::new(Engine::new(Arc::clone(&initial), layout(), cfg).expect("valid"));

    // Inline-history requests so any response can be rescored exactly later
    // regardless of when stores/appends happened around it.
    let make_req = |t: usize, i: usize| {
        let hist: Vec<u32> = (0..4).map(|j| ((i * 5 + j * 3 + t) % 40) as u32).collect();
        let cands: Vec<u32> = (0..6).map(|c| ((c * 7 + i) % 40) as u32).collect();
        ScoreRequest::inline(((t + i) % 6) as u32, hist, cands)
    };

    let scorers: Vec<_> = (0..2)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut out: Vec<(ScoreRequest, ScoreResponse)> = Vec::new();
                for i in 0..150 {
                    let req = make_req(t, i);
                    let resp = engine.score(req.clone()).expect("valid request");
                    out.push((req, resp));
                }
                out
            })
        })
        .collect();

    // Publish every revision (including re-publishing older ones — the
    // slot is last-write-wins, not monotone) while traffic is in flight.
    for snap in &snapshots {
        let m = &by_epoch[&snap.epoch().get()];
        engine.publish(Arc::clone(m));
        std::thread::yield_now();
    }
    engine.publish(Arc::clone(&by_epoch[&snapshots[0].epoch().get()]));
    engine.publish(Arc::clone(&by_epoch[&snapshots.last().expect("published").epoch().get()]));

    let mut checked = 0usize;
    let mut scratch = Scratch::new();
    for h in scorers {
        for (req, resp) in h.join().expect("scorer thread") {
            let model = by_epoch
                .get(&resp.epoch.get())
                .unwrap_or_else(|| panic!("response under unknown epoch {}", resp.epoch));
            let reference =
                score_request(model.as_ref(), &layout(), MAX_SEQ, 4, &req, &mut scratch)
                    .expect("valid request");
            assert_responses_bit_identical(&resp, &reference, "under-load response");
            checked += 1;
        }
    }
    assert_eq!(checked, 300);
}

/// Mid-swap retrieval parity: with the index still built for the old
/// epoch, the brute-force fallback scored by the *new* model must match
/// both the incrementally rebuilt index and a from-scratch index — same
/// items, same logit bits. This is the soundness test for
/// `CatalogIndex::rebuild_for`'s reuse of old block membership.
#[test]
fn mid_swap_brute_fallback_and_rebuilt_index_match_a_fresh_build() {
    let (model, ps) = build_model(9);
    let old = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(16)); // e1, e2
    let new = Arc::new(trainer.frozen_for(snapshots.last().expect("published")));

    let index_old = CatalogIndex::build(Arc::clone(&old), layout(), 16);
    let rebuilt = index_old.rebuild_for(Arc::clone(&new));
    let fresh = CatalogIndex::build(Arc::clone(&new), layout(), 16);

    let mut scratch = Scratch::new();
    for (user, hist) in [(1u32, vec![2i64, 9, 31]), (4, vec![seqfm_data::PAD, 5, 5, 17, 8, 0])] {
        let mut row = vec![seqfm_data::PAD; MAX_SEQ - hist.len()];
        row.extend(&hist);
        let view = new.history_view(&row, &mut scratch);
        let brute = index_old.retrieve_brute_with(&new, user, &view, 10).expect("valid retrieval");
        let via_rebuilt = rebuilt.retrieve(user, &view, 10).expect("valid retrieval");
        let via_fresh = fresh.retrieve(user, &view, 10).expect("valid retrieval");
        assert_retrievals_bit_identical(&brute, &via_fresh, "brute fallback vs fresh index");
        assert_retrievals_bit_identical(&via_rebuilt, &via_fresh, "rebuilt index vs fresh index");
    }
}

/// Engine-level index swap: after `publish_frozen`, `retrieve_top_k` must
/// match a cold engine whose index was built from scratch for the new
/// model — the incremental rebuild and the epoch-keyed view sharing are
/// invisible in the output.
#[test]
fn engine_retrieval_after_publish_matches_a_cold_engine_on_the_new_model() {
    let (model, ps) = build_model(5);
    let old = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let engine = Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), engine_cfg())
        .expect("valid")
        .with_catalog_index(Arc::new(CatalogIndex::build(Arc::clone(&old), layout(), 16)));

    let events = stream(16);
    for &(u, i) in &events {
        engine.append_event(u, i).expect("known ids");
    }
    // Warm retrieval views under the old epoch.
    engine.retrieve_top_k(2, 5).expect("valid retrieval");

    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&events);
    let published = engine.publish_frozen(trainer.frozen_for(snapshots.last().expect("some")));
    assert_eq!(published, engine.current_epoch());
    // Retrieval is correct *during* the background rebuild (brute-force
    // fallback on the new model) — but this test pins the rebuilt-index
    // path, so wait for the builder to land it.
    let settled = engine.wait_for_index().expect("attached");
    assert_eq!(
        settled.model().epoch(),
        published,
        "publish_frozen rebuilds the index for the new epoch"
    );

    let new = Arc::new(trainer.frozen_for(snapshots.last().expect("some")));
    let cold = Engine::new_frozen(
        trainer.frozen_for(snapshots.last().expect("some")),
        layout(),
        engine_cfg(),
    )
    .expect("valid")
    .with_catalog_index(Arc::new(CatalogIndex::build(Arc::clone(&new), layout(), 16)));
    for &(u, i) in &events {
        cold.append_event(u, i).expect("known ids");
    }

    for user in 0..6 {
        let warm = engine.retrieve_top_k(user, 5).expect("valid retrieval");
        let fresh = cold.retrieve_top_k(user, 5).expect("valid retrieval");
        assert_retrievals_bit_identical(&warm, &fresh, &format!("user {user} post-swap"));
    }
}

/// Delta vs full rebuild: across a chain of published epochs, an index
/// maintained by *delta* rebuilds (reused, drift-widened envelopes) must
/// retrieve bit-identically to one maintained by *full* rebuilds and to a
/// from-scratch build on the final model — widening only loosens bounds,
/// never results. Also pins that the delta path actually reuses blocks on
/// an incremental-training-sized step (otherwise it is dead code).
#[test]
fn delta_rebuild_chain_matches_full_rebuilds_and_a_fresh_build() {
    let (model, ps) = build_model(11);
    let old = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(32)); // e1..e4
    assert!(snapshots.len() >= 3, "need a chain of epochs");

    let mut delta = CatalogIndex::build(Arc::clone(&old), layout(), 8);
    let mut full = CatalogIndex::build(Arc::clone(&old), layout(), 8);
    let mut reused_any = 0usize;
    for snap in &snapshots {
        let new = Arc::new(trainer.frozen_for(snap));
        delta = delta.rebuild_for(Arc::clone(&new));
        full = full.rebuild_full(new);
        reused_any += delta.delta_reused_blocks();
        assert_eq!(full.delta_reused_blocks(), 0, "a full rebuild reuses nothing");
    }
    assert!(
        reused_any > 0,
        "incremental steps must let the delta rebuild reuse some envelopes \
         (drift bound too loose, or the tolerance collapsed)"
    );
    let last = Arc::new(trainer.frozen_for(snapshots.last().expect("some")));
    let fresh = CatalogIndex::build(last.clone(), layout(), 8);

    let mut scratch = Scratch::new();
    for (user, hist) in [(0u32, vec![3i64, 12, 9]), (5, vec![30i64, 1, 1, 22])] {
        let mut row = vec![seqfm_data::PAD; MAX_SEQ - hist.len()];
        row.extend(&hist);
        let view = last.history_view(&row, &mut scratch);
        let via_delta = delta.retrieve(user, &view, 12).expect("valid retrieval");
        let via_full = full.retrieve(user, &view, 12).expect("valid retrieval");
        let via_fresh = fresh.retrieve(user, &view, 12).expect("valid retrieval");
        assert_retrievals_bit_identical(&via_delta, &via_full, "delta chain vs full chain");
        assert_retrievals_bit_identical(&via_delta, &via_fresh, "delta chain vs fresh build");
    }
}

/// Background rebuild, race one: retrieval *during* the rebuild window.
/// Immediately after `publish_frozen` returns (builder likely still
/// working), `retrieve_top_k` must already serve the new model's exact
/// answer — via the brute-force fallback if the index hasn't landed, via
/// the rebuilt index if it has. Both paths are bit-identical to a fresh
/// index on the new model, so the test holds regardless of who wins the
/// race.
#[test]
fn retrieval_during_the_background_rebuild_window_serves_the_new_model() {
    let (model, ps) = build_model(13);
    let old = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let engine = Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), engine_cfg())
        .expect("valid")
        .with_catalog_index(Arc::new(CatalogIndex::build(Arc::clone(&old), layout(), 16)));
    let events = stream(16);
    for &(u, i) in &events {
        engine.append_event(u, i).expect("known ids");
    }
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&events);
    let new = Arc::new(trainer.frozen_for(snapshots.last().expect("some")));
    let reference = CatalogIndex::build(Arc::clone(&new), layout(), 16);

    let published = engine.publish_frozen(trainer.frozen_for(snapshots.last().expect("some")));
    // No wait: this retrieval races the builder thread.
    let racing = engine.retrieve_top_k(4, 8).expect("valid retrieval");
    let mut scratch = Scratch::new();
    let items = engine.history(4).expect("known user");
    let mut row: Vec<i64> = vec![seqfm_data::PAD; MAX_SEQ - items.len().min(MAX_SEQ)];
    row.extend(items[items.len() - items.len().min(MAX_SEQ)..].iter().map(|&it| it as i64));
    let view = new.history_view(&row, &mut scratch);
    let want = reference.retrieve(4, &view, 8).expect("valid retrieval");
    assert_retrievals_bit_identical(&racing, &want, "mid-rebuild retrieval");

    // After settling, the index itself serves the published epoch and the
    // same bits.
    let settled = engine.wait_for_index().expect("attached");
    assert_eq!(settled.model().epoch(), published);
    let after = engine.retrieve_top_k(4, 8).expect("valid retrieval");
    assert_retrievals_bit_identical(&after, &want, "post-rebuild retrieval");
}

/// Background rebuild, race two: publishes *overlapping* retrievals and
/// each other. A retrieval loop runs while the main thread publishes a
/// whole chain of epochs back to back (each publish likely interrupting
/// the previous rebuild — latest wins). Every retrieval must be
/// bit-identical to some published epoch's exact answer, and the index
/// must settle on the final epoch.
#[test]
fn rapid_publishes_mid_retrieve_stay_single_epoch_exact_and_settle_on_the_last() {
    let (model, ps) = build_model(17);
    let initial = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let engine = Arc::new(
        Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), engine_cfg())
            .expect("valid")
            .with_catalog_index(Arc::new(CatalogIndex::build(Arc::clone(&initial), layout(), 16))),
    );
    let events = stream(32);
    for &(u, i) in &events {
        engine.append_event(u, i).expect("known ids");
    }
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&events); // e1..e4

    // Exact per-epoch references for user 2's current stored history.
    let items = engine.history(2).expect("known user");
    let mut row: Vec<i64> = vec![seqfm_data::PAD; MAX_SEQ - items.len().min(MAX_SEQ)];
    row.extend(items[items.len() - items.len().min(MAX_SEQ)..].iter().map(|&it| it as i64));
    let mut scratch = Scratch::new();
    let mut references: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut epoch_models = vec![Arc::clone(&initial)];
    for snap in &snapshots {
        epoch_models.push(Arc::new(trainer.frozen_for(snap)));
    }
    for m in &epoch_models {
        let view = m.history_view(&row, &mut scratch);
        let reference = CatalogIndex::build(Arc::clone(m), layout(), 16)
            .retrieve(2, &view, 6)
            .expect("valid retrieval");
        references.push(reference.items.iter().map(|s| (s.item, s.score.to_bits())).collect());
    }

    let retriever = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            (0..40)
                .map(|_| {
                    let r = engine.retrieve_top_k(2, 6).expect("valid retrieval");
                    r.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        })
    };
    for snap in &snapshots {
        engine.publish_frozen(trainer.frozen_for(snap));
        std::thread::yield_now();
    }
    let observed = retriever.join().expect("retriever thread");
    for (i, got) in observed.iter().enumerate() {
        assert!(
            references.iter().any(|want| want == got),
            "retrieval {i} matches no published epoch's exact answer"
        );
    }
    let settled = engine.wait_for_index().expect("attached");
    assert_eq!(
        settled.model().epoch(),
        snapshots.last().expect("some").epoch(),
        "coalescing publishes must settle the index on the newest epoch"
    );
}

/// Background rebuild, race three: rollback published while the previous
/// epoch's rebuild may still be in flight. Latest wins — the index must
/// settle on the *rolled-back* epoch, and serve its exact bits.
#[test]
fn rollback_mid_rebuild_settles_the_index_on_the_rolled_back_epoch() {
    let (model, ps) = build_model(19);
    let initial = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let engine = Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), engine_cfg())
        .expect("valid")
        .with_catalog_index(Arc::new(CatalogIndex::build(Arc::clone(&initial), layout(), 16)));
    for &(u, i) in &stream(24) {
        engine.append_event(u, i).expect("known ids");
    }
    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(24)); // e1..e3
    assert!(snapshots.len() >= 3);

    // Publish the newest epoch, then roll straight back to e2 without
    // letting the first rebuild settle.
    engine.publish_frozen(trainer.frozen_for(snapshots.last().expect("some")));
    let rolled = trainer.rollback_to(ModelEpoch(2)).expect("retained");
    assert_eq!(engine.publish_frozen(rolled), ModelEpoch(2));

    let settled = engine.wait_for_index().expect("attached");
    assert_eq!(settled.model().epoch(), ModelEpoch(2), "latest publish wins the index");

    let e2 = Arc::new(trainer.frozen_for(&snapshots[1]));
    assert_eq!(e2.epoch(), ModelEpoch(2));
    let reference = CatalogIndex::build(Arc::clone(&e2), layout(), 16);
    let items = engine.history(3).expect("known user");
    let mut row: Vec<i64> = vec![seqfm_data::PAD; MAX_SEQ - items.len().min(MAX_SEQ)];
    row.extend(items[items.len() - items.len().min(MAX_SEQ)..].iter().map(|&it| it as i64));
    let mut scratch = Scratch::new();
    let view = e2.history_view(&row, &mut scratch);
    let want = reference.retrieve(3, &view, 7).expect("valid retrieval");
    let got = engine.retrieve_top_k(3, 7).expect("valid retrieval");
    assert_retrievals_bit_identical(&got, &want, "post-rollback retrieval");
}

/// Rollback: republishing a retained epoch restores its serving behaviour
/// exactly — same epoch stamp, same bits — even though the trainer (and
/// other epochs) advanced in between.
#[test]
fn rollback_restores_a_prior_epoch_as_served() {
    let (model, ps) = build_model(3);
    let engine = Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), engine_cfg())
        .expect("valid");
    for &(u, i) in &stream(10) {
        engine.append_event(u, i).expect("known ids");
    }

    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(24)); // e1..e3
    assert_eq!(snapshots.len(), 3);

    // Serve each epoch once, recording what user 2 sees under it.
    let candidates: Vec<u32> = vec![1, 8, 22, 39];
    let mut served: HashMap<u64, ScoreResponse> = HashMap::new();
    for snap in &snapshots {
        let epoch = engine.publish_frozen(trainer.frozen_for(snap));
        served.insert(epoch.get(), engine.score_stored(2, candidates.clone()).expect("valid"));
    }
    assert_eq!(engine.current_epoch(), ModelEpoch(3));

    // Roll back to e2: the original stamp comes back, and the response is
    // bit-identical to what e2 served the first time around.
    let rolled = trainer.rollback_to(ModelEpoch(2)).expect("retained");
    assert_eq!(engine.publish_frozen(rolled), ModelEpoch(2));
    assert_eq!(engine.current_epoch(), ModelEpoch(2));
    let replayed = engine.score_stored(2, candidates.clone()).expect("valid");
    assert_responses_bit_identical(&replayed, &served[&2], "rollback replay");
}

/// `ScorerPrecision::Fast` engines re-quantize each published model off
/// the hot path: post-swap responses must match a direct reduced-precision
/// rescore of the new model, and stay at reduced precision (not silently
/// fall back to exact).
#[test]
fn fast_profile_requantizes_on_publish() {
    let (model, ps) = build_model(3);
    let cfg = EngineConfig::builder()
        .threads(1)
        .max_seq(MAX_SEQ)
        .precision(ScorerPrecision::Fast)
        .build()
        .expect("valid config");
    let engine =
        Engine::new_frozen(FrozenSeqFm::freeze(&model, &ps), layout(), cfg).expect("valid");

    let mut trainer = OnlineTrainer::new(model, ps, layout(), online_cfg());
    let snapshots = trainer.ingest(&stream(8));
    let epoch = engine.publish_frozen(trainer.frozen_for(&snapshots[0]));

    let req = ScoreRequest::inline(1, vec![4, 17, 2], vec![3, 9, 30, 12]);
    let got = engine.score(req.clone()).expect("valid request");
    assert_eq!(got.epoch, epoch);

    let fast = trainer.frozen_for(&snapshots[0]).with_precision(ScorerPrecision::Fast);
    let mut scratch = Scratch::new();
    let want = score_request(&fast, &layout(), MAX_SEQ, 0, &req, &mut scratch).expect("valid");
    assert_responses_bit_identical(&got, &want, "fast-profile post-swap");

    // Sanity: the engine really serves the quantized profile, not exact —
    // the two must differ somewhere on this workload.
    let exact = trainer.frozen_for(&snapshots[0]);
    let want_exact =
        score_request(&exact, &layout(), MAX_SEQ, 0, &req, &mut scratch).expect("valid");
    let any_diff = want
        .ranked
        .iter()
        .zip(&want_exact.ranked)
        .any(|(a, b)| a.item != b.item || a.score.to_bits() != b.score.to_bits());
    assert!(any_diff, "Fast profile should differ from Exact on at least one bit");
}
