//! Cross-crate guarantees of the batch-coalescing serving pipeline:
//!
//! 1. **Parity** — coalesced scoring (`score_requests`, and the `Engine`
//!    built on it) is *bit-identical* per request to serial per-request
//!    `score_request`, for the frozen fast path and the graph compatibility
//!    path alike, at any worker count / coalesce width.
//! 2. **Admission** — the bounded front door sheds with `Overloaded`, parks
//!    with `submit_wait`, and never mis-routes a reply.
//! 3. **Teardown** — an engine dropped with a deep in-flight backlog
//!    answers everything (drain semantics) at every coalesce width.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, GraphScorer, Scorer, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::FeatureLayout;
use seqfm_serve::{score_request, score_requests, Engine, EngineConfig, ScoreRequest, ServeError};
use std::sync::Arc;

const MAX_SEQ: usize = 8;

fn layout() -> FeatureLayout {
    FeatureLayout { n_users: 12, n_items: 30 }
}

fn model() -> (SeqFm, ParamStore) {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1234);
    let cfg = SeqFmConfig { d: 8, max_seq: MAX_SEQ, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
    (model, ps)
}

/// A workload that exercises every grouping case: repeated `(user,
/// history)` pairs, truncation-equivalent histories, cold starts, varying
/// candidate counts, and interleaved invalid requests.
fn mixed_requests() -> Vec<ScoreRequest> {
    let l = layout();
    let mut reqs = Vec::new();
    for i in 0..40usize {
        let user = (i % 5) as u32;
        let hist_len = [0usize, 3, 7, 12][i % 4];
        let history: Vec<u32> = (0..hist_len).map(|j| ((i % 3) * 7 + j) as u32).collect();
        let candidates: Vec<u32> = (0..(1 + i % 9)).map(|c| ((c * 5 + i) % 30) as u32).collect();
        reqs.push(ScoreRequest::inline(user, history, candidates));
    }
    // Invalid requests mixed in: their errors must come back index-aligned.
    reqs.insert(7, ScoreRequest::inline(99, vec![], vec![1]));
    reqs.insert(23, ScoreRequest::inline(1, vec![2], vec![]));
    reqs.insert(31, ScoreRequest::inline(1, vec![77], vec![1]));
    let _ = l;
    reqs
}

fn assert_bit_identical(
    got: &Result<seqfm_serve::ScoreResponse, ServeError>,
    want: &Result<seqfm_serve::ScoreResponse, ServeError>,
    ctx: &str,
) {
    match (got, want) {
        (Ok(g), Ok(w)) => {
            assert_eq!(g.ranked.len(), w.ranked.len(), "{ctx}: length");
            for (gc, wc) in g.ranked.iter().zip(&w.ranked) {
                assert_eq!(gc.item, wc.item, "{ctx}: item order");
                assert_eq!(
                    gc.score.to_bits(),
                    wc.score.to_bits(),
                    "{ctx}: score bits ({} vs {})",
                    gc.score,
                    wc.score
                );
            }
        }
        (g, w) => assert_eq!(g, w, "{ctx}: error mismatch"),
    }
}

#[test]
fn coalesced_scoring_is_bit_identical_for_frozen_and_graph_scorers() {
    let (model, ps) = model();
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    let graph = GraphScorer::new(model, ps);
    let l = layout();
    let reqs = mixed_requests();
    let refs: Vec<&ScoreRequest> = reqs.iter().collect();
    let scorers: [&dyn Scorer; 2] = [&frozen, &graph];
    for scorer in scorers {
        for top_k in [0usize, 3] {
            let mut scratch = Scratch::new();
            let coalesced = score_requests(scorer, &l, MAX_SEQ, top_k, &refs, &mut scratch);
            let mut serial_scratch = Scratch::new();
            for (i, req) in reqs.iter().enumerate() {
                let serial = score_request(scorer, &l, MAX_SEQ, top_k, req, &mut serial_scratch);
                let ctx = format!("{} top_k={top_k} request {i}", scorer.name());
                assert_bit_identical(&coalesced[i], &serial, &ctx);
            }
        }
    }
}

#[test]
fn engine_is_bit_identical_to_serial_scoring_at_any_width() {
    let (model, ps) = model();
    let frozen = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let l = layout();
    let reqs = mixed_requests();
    let mut scratch = Scratch::new();
    let serial: Vec<_> =
        reqs.iter().map(|r| score_request(&*frozen, &l, MAX_SEQ, 5, r, &mut scratch)).collect();
    for (threads, coalesce_max) in [(1usize, 1usize), (1, 8), (3, 8), (4, 64)] {
        let cfg = EngineConfig::builder()
            .threads(threads)
            .max_seq(MAX_SEQ)
            .top_k(5)
            .queue_capacity(256)
            .coalesce_max(coalesce_max)
            .build()
            .expect("valid config");
        let engine = Engine::new(Arc::clone(&frozen), l, cfg).expect("valid config");
        let pending: Vec<_> =
            reqs.iter().map(|r| engine.submit(r.clone()).expect("under capacity")).collect();
        for (i, p) in pending.into_iter().enumerate() {
            let got = p.wait();
            let ctx = format!("threads={threads} coalesce_max={coalesce_max} request {i}");
            assert_bit_identical(&got, &serial[i], &ctx);
        }
    }
}

#[test]
fn cross_user_coalescing_is_bit_identical_for_frozen_and_graph_scorers() {
    // The coalescer's key is the *canonical history window alone*: many
    // users sharing one window (trending traffic, cold starts) must merge
    // into one super-batch per window — and every per-request result must
    // still match serial scoring at the logit-bit level, for both scorer
    // kinds. The user still enters each row's static features, so this is
    // only sound because the shared-history fast path never touches them.
    let (model, ps) = model();
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    let graph = GraphScorer::new(model, ps);
    let l = layout();
    let shared: Vec<u32> = vec![4, 17, 9];
    let mut reqs = Vec::new();
    for user in 0..12u32 {
        // Same canonical window for every user (one arrives pre-truncation
        // equivalent), different candidate sets.
        let history =
            if user == 5 { vec![1, 2, 3, 4, 5, 6, 7, 8, 4, 17, 9] } else { shared.clone() };
        let candidates: Vec<u32> = (0..(1 + user % 4)).map(|c| (user * 2 + c) % 30).collect();
        reqs.push(ScoreRequest::inline(user, history, candidates));
    }
    // Plus two cold starts (empty window) from different users.
    reqs.push(ScoreRequest::inline(0, vec![], vec![21, 22]));
    reqs.push(ScoreRequest::inline(11, vec![], vec![23]));
    let refs: Vec<&ScoreRequest> = reqs.iter().collect();
    let scorers: [&dyn Scorer; 2] = [&frozen, &graph];
    for scorer in scorers {
        let mut scratch = Scratch::new();
        let coalesced = score_requests(scorer, &l, MAX_SEQ, 0, &refs, &mut scratch);
        let mut serial_scratch = Scratch::new();
        for (i, req) in reqs.iter().enumerate() {
            let serial = score_request(scorer, &l, MAX_SEQ, 0, req, &mut serial_scratch);
            let ctx = format!("{} cross-user request {i}", scorer.name());
            assert_bit_identical(&coalesced[i], &serial, &ctx);
        }
    }
}

#[test]
fn overload_shedding_and_parking_round_trip_under_concurrency() {
    let (model, ps) = model();
    let frozen = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let l = layout();
    let cfg = EngineConfig::builder()
        .threads(2)
        .max_seq(MAX_SEQ)
        .top_k(3)
        .queue_capacity(4)
        .coalesce_max(4)
        .build()
        .expect("valid config");
    let engine = Engine::new(frozen, l, cfg).expect("valid config");
    // Hammer a tiny admission queue from several producers; every request
    // must either resolve correctly or shed explicitly — nothing may hang,
    // cross replies, or error spuriously.
    let shed_total = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let engine = &engine;
                s.spawn(move || {
                    let mut shed = 0usize;
                    for i in 0..50usize {
                        let req = ScoreRequest::inline(
                            (p % 5) as u32,
                            vec![1, 2, 3],
                            vec![((i * 3) % 30) as u32, 5, 9, 11],
                        );
                        match engine.submit(req) {
                            Ok(pending) => {
                                let resp = pending.wait().expect("valid request");
                                assert_eq!(resp.ranked.len(), 3, "top-3 of 4 candidates");
                            }
                            Err(ServeError::Overloaded { capacity, req }) => {
                                assert_eq!(capacity, 4);
                                shed += 1;
                                // Fall back to parking admission with the
                                // handed-back request — no defensive clone.
                                let resp = engine.submit_wait(*req).wait().expect("valid request");
                                assert_eq!(resp.ranked.len(), 3);
                            }
                            Err(other) => panic!("unexpected submit error: {other}"),
                        }
                    }
                    shed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
    });
    // Not asserted > 0 (timing-dependent), but every shed request completed
    // via submit_wait — the two admission modes compose.
    let _ = shed_total;
}

#[test]
fn teardown_with_deep_inflight_backlog_answers_everything() {
    let (model, ps) = model();
    let frozen = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let l = layout();
    for coalesce_max in [1usize, 16] {
        let cfg = EngineConfig::builder()
            .threads(2)
            .max_seq(MAX_SEQ)
            .top_k(2)
            .queue_capacity(512)
            .coalesce_max(coalesce_max)
            .build()
            .expect("valid config");
        let engine = Engine::new(Arc::clone(&frozen), l, cfg).expect("valid config");
        let pending: Vec<_> = (0..200usize)
            .map(|i| {
                engine
                    .submit(ScoreRequest::inline(
                        (i % 12) as u32,
                        vec![(i % 30) as u32],
                        vec![1, 2, 3],
                    ))
                    .expect("under capacity")
            })
            .collect();
        drop(engine); // ShutDown path: close the queue with 200 in flight
        for (i, p) in pending.into_iter().enumerate() {
            // Drain semantics: every queued request is answered, not
            // dropped — and the answer is a real response, not ShutDown.
            let resp = p.wait().unwrap_or_else(|e| panic!("request {i} lost on teardown: {e}"));
            assert_eq!(resp.ranked.len(), 2);
        }
    }
}
