//! Full-catalog retrieval parity: the upper-bound-pruned blocked scan must
//! return **exactly** the brute-force top-K — same item ids, same logit
//! bits — for every Table-V ablation variant and both extensions, both on
//! a cold stored history and immediately after a live `append_event`
//! (the freshly bumped version forces a view rebuild mid-flight).
//!
//! The soundness chain under test: candidate-side convex envelopes and the
//! LN z-ball (see `seqfm_core::bounds`) make every per-block upper bound
//! ≥ every true score in the block; the scan prunes only on a strict `<`
//! against the running k-th best, so no tie and no rounding can drop a
//! true top-K member — pruning is invisible in the output.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{Ablation, FrozenSeqFm, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::FeatureLayout;
use seqfm_serve::{CatalogIndex, Engine, EngineConfig, Retrieval};
use std::sync::Arc;

const MAX_SEQ: usize = 6;
const K: usize = 10;

fn build_variant(
    ablation: Ablation,
    n_items: usize,
    seed: u64,
) -> (Arc<FrozenSeqFm>, FeatureLayout) {
    let layout = FeatureLayout { n_users: 6, n_items };
    let cfg = SeqFmConfig { d: 8, max_seq: MAX_SEQ, dropout: 0.0, ablation, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
    (Arc::new(FrozenSeqFm::freeze(&model, &ps)), layout)
}

/// Brute-force reference through the *same* stored history the engine
/// used: snapshot the store, build the canonical serving row, score every
/// block. Any divergence between this and `retrieve_top_k` is a bug in the
/// prune, the view cache, or the row canonicalisation.
fn brute_via_store(engine: &Engine, index: &CatalogIndex, user: u32, k: usize) -> Retrieval {
    let items = engine.history(user).expect("known user");
    let mut row: Vec<i64> = vec![seqfm_data::PAD; MAX_SEQ - items.len().min(MAX_SEQ)];
    row.extend(items[items.len() - items.len().min(MAX_SEQ)..].iter().map(|&it| it as i64));
    let view = index.model().history_view(&row, &mut Scratch::new());
    index.retrieve_brute(user, &view, k).expect("valid retrieval")
}

fn assert_bit_identical(name: &str, when: &str, pruned: &Retrieval, brute: &Retrieval) {
    assert_eq!(pruned.items.len(), brute.items.len(), "[{name}/{when}] result length");
    for (rank, (p, b)) in pruned.items.iter().zip(&brute.items).enumerate() {
        assert_eq!(p.item, b.item, "[{name}/{when}] item id diverges at rank {rank}");
        assert_eq!(
            p.score.to_bits(),
            b.score.to_bits(),
            "[{name}/{when}] logit bits diverge at rank {rank} (item {})",
            p.item
        );
    }
}

#[test]
fn pruned_retrieval_is_bit_identical_to_brute_force_across_all_variants() {
    let mut variants = Ablation::table5_variants();
    variants.extend(Ablation::extension_variants());

    for (vi, (name, ablation)) in variants.into_iter().enumerate() {
        let (frozen, layout) = build_variant(ablation, 150, 41 + vi as u64);
        let index = Arc::new(CatalogIndex::build(Arc::clone(&frozen), layout, 16));
        let engine_cfg =
            EngineConfig::builder().threads(2).max_seq(MAX_SEQ).build().expect("valid config");
        let engine = Engine::new(Arc::clone(&frozen), layout, engine_cfg)
            .expect("valid engine")
            .with_catalog_index(Arc::clone(&index));

        // Cold: a stored history built up before the first retrieval.
        let user = 3u32;
        for item in [2u32, 77, 31] {
            engine.append_event(user, item).expect("known ids");
        }
        let pruned = engine.retrieve_top_k(user, K).expect("valid retrieval");
        let brute = brute_via_store(&engine, &index, user, K);
        assert_bit_identical(name, "cold", &pruned, &brute);
        assert_eq!(
            pruned.blocks_scored + pruned.blocks_pruned,
            index.n_blocks(),
            "[{name}] every block is either scored or pruned"
        );

        // Immediately after a live append: the version bump must invalidate
        // the cached view, and the pruned scan over the *new* history must
        // again match brute force bit for bit.
        engine.append_event(user, 120).expect("known ids");
        let pruned2 = engine.retrieve_top_k(user, K).expect("valid retrieval");
        let brute2 = brute_via_store(&engine, &index, user, K);
        assert_bit_identical(name, "after append_event", &pruned2, &brute2);
        assert_ne!(
            brute.items.iter().map(|s| s.score.to_bits()).collect::<Vec<_>>(),
            brute2.items.iter().map(|s| s.score.to_bits()).collect::<Vec<_>>(),
            "[{name}] the append must actually change the scores (else this test proves nothing)"
        );
    }
}

/// Adversarially wrong scan statistics must be invisible in the output:
/// the speculation only steers *work* (phase-one ordering and skips); the
/// sound repair pass restores the exact brute-force answer no matter what
/// the statistics claim. Poisons every Table-V variant's index three ways —
/// wildly pessimistic (forces maximal speculative skipping, so the repair
/// pass has to rediscover the real top-K), wildly optimistic (forces
/// everything through phase one), and mixed.
#[test]
fn poisoned_scan_statistics_never_change_the_retrieved_bits() {
    let mut variants = Ablation::table5_variants();
    variants.extend(Ablation::extension_variants());

    for (vi, (name, ablation)) in variants.into_iter().enumerate() {
        let (frozen, layout) = build_variant(ablation, 150, 90 + vi as u64);
        let index = Arc::new(CatalogIndex::build(Arc::clone(&frozen), layout, 16));
        let engine_cfg =
            EngineConfig::builder().threads(2).max_seq(MAX_SEQ).build().expect("valid config");
        let engine = Engine::new(Arc::clone(&frozen), layout, engine_cfg)
            .expect("valid engine")
            .with_catalog_index(Arc::clone(&index));
        let user = 1u32;
        for item in [5u32, 60, 149, 23] {
            engine.append_event(user, item).expect("known ids");
        }
        let brute = brute_via_store(&engine, &index, user, K);

        // Pessimistic: every block claims its best score is hopeless. Phase
        // one skips everything it can; only the repair pass can save the
        // answer — and must.
        for bi in 0..index.n_blocks() {
            index.scan_stats().force(bi, Some(-1.0e30));
        }
        let pessimistic = engine.retrieve_top_k(user, K).expect("valid retrieval");
        assert_bit_identical(name, "pessimistic stats", &pessimistic, &brute);
        assert!(
            pessimistic.blocks_repaired > 0,
            "[{name}] hopeless statistics must actually trigger the repair pass \
             (otherwise this test exercises nothing)"
        );

        // Optimistic: every block claims a score far above anything real,
        // so nothing is speculatively skipped (the sound prune may still
        // fire at visit time — statistics cannot *weaken* soundness).
        for bi in 0..index.n_blocks() {
            index.scan_stats().force(bi, Some(1.0e30));
        }
        let optimistic = engine.retrieve_top_k(user, K).expect("valid retrieval");
        assert_bit_identical(name, "optimistic stats", &optimistic, &brute);

        // Mixed garbage: alternating extremes, infinities, and cleared
        // blocks — the visit order is scrambled arbitrarily.
        for bi in 0..index.n_blocks() {
            let poison = match bi % 4 {
                0 => Some(f32::INFINITY),
                1 => Some(-1.0e30),
                2 => None,
                _ => Some((bi as f32) - 3.0),
            };
            index.scan_stats().force(bi, poison);
        }
        let mixed = engine.retrieve_top_k(user, K).expect("valid retrieval");
        assert_bit_identical(name, "mixed stats", &mixed, &brute);
        assert_eq!(
            mixed.blocks_scored + mixed.blocks_pruned,
            index.n_blocks(),
            "[{name}] block accounting stays exhaustive under poisoned stats"
        );
    }
}

#[test]
fn retrieval_parity_holds_at_higher_worker_counts() {
    // The shard-merge and the prune threshold must be worker-count
    // independent: re-run one variant's cold check on a 4-thread engine
    // and compare against the single-thread result of the same index.
    let (frozen, layout) = build_variant(Ablation::default(), 200, 7);
    let index = Arc::new(CatalogIndex::build(Arc::clone(&frozen), layout, 8));
    let mut results: Vec<Retrieval> = Vec::new();
    for threads in [1usize, 4] {
        let engine_cfg = EngineConfig::builder()
            .threads(threads)
            .max_seq(MAX_SEQ)
            .build()
            .expect("valid config");
        let engine = Engine::new(Arc::clone(&frozen), layout, engine_cfg)
            .expect("valid engine")
            .with_catalog_index(Arc::clone(&index));
        for item in [9u32, 150, 42, 8] {
            engine.append_event(2, item).expect("known ids");
        }
        results.push(engine.retrieve_top_k(2, 25).expect("valid retrieval"));
    }
    assert_bit_identical("default", "1 vs 4 threads", &results[0], &results[1]);
}
