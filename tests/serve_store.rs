//! Cross-crate guarantees of the stateful serving path — the engine-owned
//! [`HistoryStore`] and the incremental [`ViewCache`] on top of it:
//!
//! 1. **Parity** — a `(user, candidates)` stored-history request scores
//!    *bit-identically* to the same request with the history inlined, for
//!    the frozen fast path and the graph compatibility path alike — on a
//!    cold cache, on a warm cache, and **immediately after an append**
//!    (version-keyed lazy invalidation must never serve a stale panel).
//! 2. **Concurrency** — appends and stored-history scores racing from many
//!    threads never corrupt a window: every response equals the serial
//!    score of *some* valid prefix-window of that user's appends.
//! 3. **Bounded windows** — the per-user ring keeps exactly the most recent
//!    `history_capacity` events through arbitrary traffic, and bulk
//!    warm-up ([`Engine::warm_histories`]) matches event-by-event appends.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, GraphScorer, Scorer, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::{Dataset, Event, FeatureLayout};
use seqfm_serve::{score_request, Engine, EngineConfig, HistoryStore, ScoreRequest, ServeError};
use std::sync::Arc;

const MAX_SEQ: usize = 6;

fn layout() -> FeatureLayout {
    FeatureLayout { n_users: 9, n_items: 25 }
}

fn model(seed: u64) -> (SeqFm, ParamStore) {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SeqFmConfig { d: 8, max_seq: MAX_SEQ, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
    (model, ps)
}

fn assert_bits(got: &seqfm_serve::ScoreResponse, want: &seqfm_serve::ScoreResponse, ctx: &str) {
    assert_eq!(got.ranked.len(), want.ranked.len(), "{ctx}: length");
    for (g, w) in got.ranked.iter().zip(&want.ranked) {
        assert_eq!(g.item, w.item, "{ctx}: item order");
        assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{ctx}: score bits ({} vs {})",
            g.score,
            w.score
        );
    }
}

/// The tentpole acceptance check: stored-history scoring — cold cache, warm
/// cache, and immediately after `append_event` — is bit-identical to fresh
/// inline scoring, for both scorer kinds.
#[test]
fn stored_scoring_tracks_appends_bit_identically_for_both_scorers() {
    let l = layout();
    let (m1, p1) = model(71);
    let (m2, p2) = model(71);
    let frozen: Arc<dyn Scorer + Send + Sync> = Arc::new(FrozenSeqFm::freeze(&m1, &p1));
    let graph: Arc<dyn Scorer + Send + Sync> = Arc::new(GraphScorer::new(m2, p2));
    for (name, scorer) in [("frozen", frozen), ("graph", graph)] {
        let engine = Engine::new(
            Arc::clone(&scorer),
            l,
            EngineConfig::builder().max_seq(MAX_SEQ).build().expect("valid"),
        )
        .expect("valid");
        let mut inline_hist: Vec<u32> = Vec::new();
        let mut scratch = Scratch::new();
        // Interleave appends and scores: every score must see exactly the
        // events appended so far (windowed), never a cached stale panel.
        for (step, item) in [3u32, 11, 7, 24, 0, 7, 19, 2, 13].into_iter().enumerate() {
            engine.append_event(4, item).expect("valid ids");
            inline_hist.push(item);
            let candidates: Vec<u32> = (0..5).map(|c| (c * 3 + step as u32) % 25).collect();
            let got = engine.score_stored(4, candidates.clone()).expect("valid");
            let want = score_request(
                &*scorer,
                &l,
                MAX_SEQ,
                0,
                &ScoreRequest::inline(4, inline_hist.clone(), candidates.clone()),
                &mut scratch,
            )
            .expect("valid");
            assert_bits(&got, &want, &format!("{name} step {step} (post-append)"));
            // Re-score without an intervening append: the warm-cache path
            // (a hit for the frozen scorer) must give the same bits.
            let again = engine.score_stored(4, candidates).expect("valid");
            assert_bits(&again, &want, &format!("{name} step {step} (warm cache)"));
        }
        let stats = engine.cache_stats();
        if name == "frozen" {
            assert!(stats.hits >= 9, "frozen re-scores must hit the view cache: {stats:?}");
        } else {
            // The graph scorer builds no views; the cache never populates.
            assert_eq!(stats.entries, 0, "graph scorer must not cache views: {stats:?}");
        }
    }
}

#[test]
fn concurrent_appends_and_stored_scores_stay_consistent() {
    let l = layout();
    let (m, p) = model(83);
    let frozen = Arc::new(FrozenSeqFm::freeze(&m, &p));
    let cfg = EngineConfig::builder()
        .threads(3)
        .max_seq(MAX_SEQ)
        .queue_capacity(512)
        .build()
        .expect("valid");
    let engine = Engine::new(Arc::clone(&frozen), l, cfg).expect("valid");
    const APPENDS: usize = 60;
    // Writers append a known per-user sequence while readers score the same
    // users through the store. Each response must equal the serial score of
    // some prefix of the writer's sequence — the store can lag a racing
    // reader, but it can never interleave garbage.
    std::thread::scope(|s| {
        for user in 0..3u32 {
            let engine = &engine;
            s.spawn(move || {
                for k in 0..APPENDS {
                    let item = ((user as usize * APPENDS + k) % 25) as u32;
                    engine.append_event(user, item).expect("valid ids");
                }
            });
        }
        for user in 0..3u32 {
            let engine = &engine;
            let frozen = Arc::clone(&frozen);
            s.spawn(move || {
                let mut scratch = Scratch::new();
                let candidates = vec![1u32, 8, 20];
                // Every possible prefix-window of this user's append
                // sequence, pre-scored serially for comparison.
                let mut by_prefix = Vec::with_capacity(APPENDS + 1);
                for n in 0..=APPENDS {
                    let hist: Vec<u32> = (n.saturating_sub(MAX_SEQ)..n)
                        .map(|k| ((user as usize * APPENDS + k) % 25) as u32)
                        .collect();
                    let want = score_request(
                        &*frozen,
                        &layout(),
                        MAX_SEQ,
                        0,
                        &ScoreRequest::inline(user, hist, candidates.clone()),
                        &mut scratch,
                    )
                    .expect("valid");
                    by_prefix.push(want);
                }
                for round in 0..40 {
                    let got = engine.score_stored(user, candidates.clone()).expect("valid");
                    let matched = by_prefix.iter().any(|want| {
                        want.ranked.len() == got.ranked.len()
                            && want.ranked.iter().zip(&got.ranked).all(|(w, g)| {
                                w.item == g.item && w.score.to_bits() == g.score.to_bits()
                            })
                    });
                    assert!(
                        matched,
                        "user {user} round {round}: response matches no valid append prefix"
                    );
                }
            });
        }
    });
    // Settled state: every user holds exactly the last MAX_SEQ appends.
    for user in 0..3u32 {
        let want: Vec<u32> = (APPENDS - MAX_SEQ..APPENDS)
            .map(|k| ((user as usize * APPENDS + k) % 25) as u32)
            .collect();
        assert_eq!(engine.history(user).expect("known"), want, "user {user} final window");
    }
}

#[test]
fn warm_histories_matches_event_by_event_appends() {
    let l = layout();
    let (m, p) = model(97);
    let frozen = Arc::new(FrozenSeqFm::freeze(&m, &p));
    let cfg = EngineConfig::builder().max_seq(MAX_SEQ).history_capacity(4).build().expect("valid");
    let warmed = Engine::new(Arc::clone(&frozen), l, cfg).expect("valid");
    let appended = Engine::new(Arc::clone(&frozen), l, cfg).expect("valid");
    let ev = |item: u32, time: u32| Event { item, time, rating: 1.0 };
    let per_user: Vec<Vec<Event>> = (0..l.n_users)
        .map(|u| (0..(u * 2) as u32).map(|k| ev((u as u32 * 5 + k) % 25, k)).collect())
        .collect();
    let total: usize = per_user.iter().map(Vec::len).sum();
    let ds = Dataset {
        name: "warmup".into(),
        n_users: l.n_users,
        n_items: l.n_items,
        item_cluster: vec![0; l.n_items],
        per_user: per_user.clone(),
    };
    assert_eq!(warmed.warm_histories(&ds).expect("in-layout items"), total);
    for (u, events) in per_user.iter().enumerate() {
        for e in events {
            appended.append_event(u as u32, e.item).expect("valid ids");
        }
        assert_eq!(
            warmed.history(u as u32).expect("known"),
            appended.history(u as u32).expect("known"),
            "user {u}: bulk load diverges from appends"
        );
        // history_capacity(4) bounds the window regardless of traffic.
        assert!(warmed.history(u as u32).expect("known").len() <= 4);
    }
    // And the warmed store serves: stored == inline bits for a loaded user.
    let mut scratch = Scratch::new();
    let user = (l.n_users - 1) as u32;
    let hist = warmed.history(user).expect("known");
    let got = warmed.score_stored(user, vec![0, 9, 24]).expect("valid");
    let want = score_request(
        &*frozen,
        &l,
        MAX_SEQ,
        0,
        &ScoreRequest::inline(user, hist, vec![0, 9, 24]),
        &mut scratch,
    )
    .expect("valid");
    assert_bits(&got, &want, "warmed store serving");
}

#[test]
fn standalone_store_api_is_usable_without_an_engine() {
    // The store is a public subsystem of its own (benchmarks, tooling).
    let store = HistoryStore::new(40, 3);
    assert_eq!((store.n_users(), store.capacity()), (40, 3));
    assert_eq!(store.version(17), 0);
    for item in [5u32, 6, 7, 8] {
        store.append(17, item);
    }
    let (window, version) = store.snapshot(17);
    assert_eq!(window, vec![6, 7, 8], "ring must keep the newest 3");
    assert_eq!(version, 4, "version counts all appends, not just survivors");
    // Stored requests on the store-less helpers fail typed, not silently.
    let (m, p) = model(5);
    let frozen = FrozenSeqFm::freeze(&m, &p);
    let mut scratch = Scratch::new();
    let err = score_request(
        &frozen,
        &layout(),
        MAX_SEQ,
        0,
        &ScoreRequest::stored(1, vec![2]),
        &mut scratch,
    )
    .expect_err("no store attached");
    assert!(matches!(err, ServeError::NoHistoryStore), "got {err:?}");
}
