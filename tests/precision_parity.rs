//! Fast-profile parity: `ScorerPrecision::Fast` must track the exact
//! scorer within the documented per-logit ε, preserve ranking order, and
//! keep pruned retrieval bit-identical to brute force — on every Table-V
//! ablation variant and both extensions.
//!
//! The documented envelope (see `seqfm_core::precision`) is
//! `|fast − exact| ≤ 2e-2 + 1e-2·|exact|`; the dominant error source is
//! the `f16` embedding quantization step (2⁻¹¹ relative per coordinate).
//! Ranking preservation is asserted in its sound form: two items whose
//! exact logits are separated by more than the *sum* of their ε budgets
//! can never swap under the fast profile.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{Ablation, FrozenSeqFm, Scorer, ScorerPrecision, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::{build_instance, FeatureLayout};
use seqfm_serve::CatalogIndex;
use std::sync::Arc;

const MAX_SEQ: usize = 6;
const D: usize = 8;
const N_ITEMS: usize = 150;

/// The documented per-logit ε budget of the fast profile.
fn eps(exact: f32) -> f64 {
    2e-2 + 1e-2 * exact.abs() as f64
}

fn all_variants() -> Vec<(&'static str, Ablation)> {
    let mut v = Ablation::table5_variants();
    v.extend(Ablation::extension_variants());
    v
}

fn build_pair(ablation: Ablation, seed: u64) -> (FrozenSeqFm, FrozenSeqFm, FeatureLayout) {
    let layout = FeatureLayout { n_users: 6, n_items: N_ITEMS };
    let cfg = SeqFmConfig { d: D, max_seq: MAX_SEQ, dropout: 0.0, ablation, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
    let exact = FrozenSeqFm::freeze(&model, &ps);
    let fast = FrozenSeqFm::freeze(&model, &ps).with_precision(ScorerPrecision::Fast);
    (exact, fast, layout)
}

/// Full-catalog logits for one user under one model, via the serving path
/// (history view + blocked catalog scorer).
fn catalog_logits(model: &FrozenSeqFm, layout: &FeatureLayout, user: u32) -> Vec<f32> {
    let hist = [2u32, 77, 31, 9];
    let inst = build_instance(layout, user, 0, &hist, MAX_SEQ, 0.0);
    let mut scratch = Scratch::new();
    let view = model.history_view(&inst.dyn_idx, &mut scratch);
    let ids: Vec<u32> = (0..layout.n_items as u32).collect();
    let mut batch = seqfm_data::Batch::default();
    let mut out = Vec::new();
    for chunk in ids.chunks(16) {
        model.score_catalog_into(layout, user, chunk, &view, &mut batch, &mut scratch, &mut out);
    }
    out
}

#[test]
fn fast_logits_stay_inside_the_documented_epsilon_on_every_variant() {
    for (vi, (name, ablation)) in all_variants().into_iter().enumerate() {
        let (exact, fast, layout) = build_pair(ablation, 101 + vi as u64);
        assert_eq!(exact.name(), "SeqFM[frozen]");
        assert_eq!(fast.name(), "SeqFM[frozen:fast]");
        let se = catalog_logits(&exact, &layout, 3);
        let sf = catalog_logits(&fast, &layout, 3);
        assert_eq!(se.len(), sf.len());
        let mut max_err = 0.0f64;
        let mut any_diff = false;
        for (c, (&e, &f)) in se.iter().zip(&sf).enumerate() {
            let err = (f as f64 - e as f64).abs();
            max_err = max_err.max(err);
            any_diff |= e.to_bits() != f.to_bits();
            assert!(
                err <= eps(e),
                "[{name}] item {c}: fast logit {f} vs exact {e} (err {err:.3e} > ε {:.3e})",
                eps(e)
            );
        }
        // A fast profile that never changes a bit would mean the quantized
        // path silently fell back to exact — the ε assertion above would
        // then prove nothing.
        assert!(
            any_diff,
            "[{name}] fast profile produced bit-identical logits (max_err {max_err:.1e})"
        );
    }
}

#[test]
fn fast_profile_preserves_ranking_order_on_every_variant() {
    const K: usize = 10;
    for (vi, (name, ablation)) in all_variants().into_iter().enumerate() {
        let (exact, fast, layout) = build_pair(ablation, 101 + vi as u64);
        let se = catalog_logits(&exact, &layout, 3);
        let sf = catalog_logits(&fast, &layout, 3);

        // Sound pairwise check: a gap wider than both items' ε budgets
        // cannot invert under the fast profile.
        for i in 0..se.len() {
            for j in 0..se.len() {
                let gap = se[i] as f64 - se[j] as f64;
                if gap > eps(se[i]) + eps(se[j]) {
                    assert!(
                        sf[i] > sf[j],
                        "[{name}] fast profile inverted items {i} ({} vs exact {}) and \
                         {j} ({} vs exact {}) across an ε-separated gap {gap:.3e}",
                        sf[i],
                        se[i],
                        sf[j],
                        se[j]
                    );
                }
            }
        }

        // Top-K preservation whenever the exact boundary is ε-separated
        // (ties inside the ε band may legitimately swap membership).
        let rank = |scores: &[f32]| -> Vec<usize> {
            let mut ids: Vec<usize> = (0..scores.len()).collect();
            ids.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
            ids
        };
        let re = rank(&se);
        let rf = rank(&sf);
        let boundary_gap = se[re[K - 1]] as f64 - se[re[K]] as f64;
        if boundary_gap > eps(se[re[K - 1]]) + eps(se[re[K]]) {
            let mut te: Vec<usize> = re[..K].to_vec();
            let mut tf: Vec<usize> = rf[..K].to_vec();
            te.sort_unstable();
            tf.sort_unstable();
            assert_eq!(te, tf, "[{name}] fast profile changed the top-{K} set");
        }
    }
}

/// The full soundness chain in the fast profile: quantized envelopes +
/// fast kernels + the per-item linear screen must keep the pruned scan
/// bit-identical to fast brute force (same ids, same logit bits).
#[test]
fn fast_pruned_retrieval_is_bit_identical_to_fast_brute_force() {
    for (vi, (name, ablation)) in all_variants().into_iter().enumerate() {
        let (_, fast, layout) = build_pair(ablation, 211 + vi as u64);
        let fast = Arc::new(fast);
        let index = CatalogIndex::build(Arc::clone(&fast), layout, 16);
        let hist = [5u32, 140, 66];
        let inst = build_instance(&layout, 2, 0, &hist, MAX_SEQ, 0.0);
        let mut scratch = Scratch::new();
        let view = fast.history_view(&inst.dyn_idx, &mut scratch);
        let pruned = index.retrieve(2, &view, 10).expect("valid retrieval");
        let brute = index.retrieve_brute(2, &view, 10).expect("valid retrieval");
        assert_eq!(pruned.items.len(), brute.items.len(), "[{name}] result length");
        for (rank, (p, b)) in pruned.items.iter().zip(&brute.items).enumerate() {
            assert_eq!(p.item, b.item, "[{name}] item id diverges at rank {rank}");
            assert_eq!(
                p.score.to_bits(),
                b.score.to_bits(),
                "[{name}] logit bits diverge at rank {rank}"
            );
        }
        assert_eq!(
            brute.items_scored, layout.n_items,
            "[{name}] brute force must score the whole catalog"
        );
    }
}
