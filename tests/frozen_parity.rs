//! Checkpoint → frozen parity: a trained SeqFM saved to a checkpoint and
//! reloaded as a `FrozenSeqFm` must produce logits **bit-for-bit identical**
//! to the graph path (`SeqModel::forward` with `training = false`), across
//! every Table-V ablation variant and both extensions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_core::{
    Ablation, FrozenSeqFm, Scorer, Scratch, SeqFm, SeqFmConfig, SeqModel, TrainConfig,
};
use seqfm_data::{
    build_instance, ranking::RankingConfig, Batch, FeatureLayout, LeaveOneOut, NegativeSampler,
    Scale,
};
use seqfm_nn::checkpoint;

fn tiny_data() -> (seqfm_data::Dataset, LeaveOneOut, FeatureLayout, NegativeSampler) {
    let mut cfg = RankingConfig::gowalla(Scale::Small);
    cfg.n_users = 16;
    cfg.n_items = 40;
    cfg.min_len = 6;
    cfg.max_len = 10;
    let ds = seqfm_data::ranking::generate(&cfg).expect("valid config");
    let split = LeaveOneOut::split(&ds);
    let layout = FeatureLayout::of(&ds);
    let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(ds.n_items, seen);
    (ds, split, layout, sampler)
}

fn eval_batch(layout: &FeatureLayout, max_seq: usize) -> Batch {
    Batch::try_from_instances(&[
        build_instance(layout, 0, 7, &[1, 2, 5], max_seq, 1.0),
        build_instance(layout, 3, 39, &[], max_seq, 0.0), // cold start: all padding
        build_instance(layout, 15, 0, &[4, 9, 2, 7, 1, 3, 8, 11], max_seq, 1.0),
    ])
    .expect("valid batch")
}

#[test]
fn trained_checkpoints_reload_frozen_with_identical_logits() {
    let (_, split, layout, sampler) = tiny_data();
    let max_seq = 6;
    let mut variants = Ablation::table5_variants();
    variants.extend(Ablation::extension_variants());

    for (name, ablation) in variants {
        let cfg = SeqFmConfig { d: 8, max_seq, dropout: 0.1, ablation, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(13);
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        // A couple of real training epochs so the checkpoint holds genuinely
        // trained (non-initialisation) weights.
        let tc = TrainConfig { epochs: 2, batch_size: 64, lr: 1e-2, max_seq, ..Default::default() };
        let report = seqfm_core::train_ranking(&model, &mut ps, &split, &layout, &sampler, &tc);
        assert_eq!(report.epoch_losses.len(), 2, "{name}: training did not run");

        let blob = checkpoint::save(&ps);
        let frozen = FrozenSeqFm::from_checkpoint(&blob, &layout, cfg)
            .unwrap_or_else(|e| panic!("{name}: checkpoint → frozen failed: {e}"));

        let batch = eval_batch(&layout, max_seq);
        let mut g = Graph::new();
        let y = model.forward(&mut g, &ps, &batch, false, &mut rng);
        let expect = g.value(y).data().to_vec();
        let mut scratch = Scratch::new();
        let got = frozen.score(&batch, &mut scratch);
        assert_eq!(expect.len(), got.len(), "{name}: logit count");
        for (i, (e, f)) in expect.iter().zip(got).enumerate() {
            assert_eq!(
                e.to_bits(),
                f.to_bits(),
                "{name}: logit {i} not bit-identical ({e} vs {f})"
            );
        }
    }
}

#[test]
fn checkpoint_file_roundtrips_into_frozen() {
    let (_, _, layout, _) = tiny_data();
    let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
    let dir = std::env::temp_dir().join("seqfm_frozen_parity");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trained.sqfm");
    checkpoint::save_file(&ps, &path).expect("save_file");
    let frozen = FrozenSeqFm::from_checkpoint_file(&path, &layout, cfg).expect("load");
    std::fs::remove_file(&path).unwrap();

    let batch = eval_batch(&layout, 6);
    let mut scratch = Scratch::new();
    let from_file = frozen.score(&batch, &mut scratch).to_vec();
    let live = FrozenSeqFm::freeze(&model, &ps);
    let direct = live.score(&batch, &mut scratch).to_vec();
    assert_eq!(from_file, direct);
}

#[test]
fn frozen_rejects_mismatched_checkpoints() {
    let layout = FeatureLayout { n_users: 4, n_items: 9 };
    let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let _model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
    let blob = checkpoint::save(&ps);
    // Wrong layout → shape mismatch, surfaced as an error, not a panic.
    let bigger = FeatureLayout { n_users: 5, n_items: 9 };
    assert!(FrozenSeqFm::from_checkpoint(&blob, &bigger, cfg).is_err());
    // Garbage → decode error.
    assert!(FrozenSeqFm::from_checkpoint(b"not a checkpoint", &layout, cfg).is_err());
}
